open Blockplane
open Bp_codec

(* ---------- paxos wire messages (carried as Blockplane payloads) ---------- *)

type ballot = { round : int; node : int }

let ballot_gt a b = a.round > b.round || (a.round = b.round && a.node > b.node)
let ballot_ge a b = a = b || ballot_gt a b

type pmsg =
  | Pprepare of { r : ballot }
  | Ppromise of { r : ballot; ok : bool; accepted : (int * ballot * string) list }
  | Ppropose of { r : ballot; inst : int; value : string }
  | Paccept of { r : ballot; inst : int; ok : bool }

let encode_ballot e b =
  Wire.varint e b.round;
  Wire.varint e b.node

let decode_ballot d =
  let round = Wire.read_varint d in
  let node = Wire.read_varint d in
  { round; node }

let encode_pmsg m =
  Wire.encode (fun e ->
      match m with
      | Pprepare { r } ->
          Wire.u8 e 0;
          encode_ballot e r
      | Ppromise { r; ok; accepted } ->
          Wire.u8 e 1;
          encode_ballot e r;
          Wire.bool e ok;
          Wire.list e
            (fun (inst, b, v) ->
              Wire.varint e inst;
              encode_ballot e b;
              Wire.string e v)
            accepted
      | Ppropose { r; inst; value } ->
          Wire.u8 e 2;
          encode_ballot e r;
          Wire.varint e inst;
          Wire.string e value
      | Paccept { r; inst; ok } ->
          Wire.u8 e 3;
          encode_ballot e r;
          Wire.varint e inst;
          Wire.bool e ok)

let decode_pmsg s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Pprepare { r = decode_ballot d }
      | 1 ->
          let r = decode_ballot d in
          let ok = Wire.read_bool d in
          let accepted =
            Wire.read_list d (fun d ->
                let inst = Wire.read_varint d in
                let b = decode_ballot d in
                let v = Wire.read_string d in
                (inst, b, v))
          in
          Ppromise { r; ok; accepted }
      | 2 ->
          let r = decode_ballot d in
          let inst = Wire.read_varint d in
          Ppropose { r; inst; value = Wire.read_string d }
      | 3 ->
          let r = decode_ballot d in
          let inst = Wire.read_varint d in
          Paccept { r; inst; ok = Wire.read_bool d }
      | n -> raise (Wire.Malformed (Printf.sprintf "byz-paxos msg %d" n)))

let kind_of_pmsg = function
  | Pprepare _ -> "prepare"
  | Ppromise _ -> "promise"
  | Ppropose _ -> "propose"
  | Paccept _ -> "accept"

(* Commit payloads: "evt:<kind>:<credits>" grants send credits for that
   message kind; other commits record protocol state changes. *)
let event_payload kind credits = Printf.sprintf "evt:%s:%d" kind credits

let parse_event payload =
  match String.split_on_char ':' payload with
  | [ "evt"; kind; credits ] -> (
      match int_of_string_opt credits with
      | Some c -> Some (kind, c)
      | None -> None)
  | _ -> None

(* ---------- the replicated protocol state (verification routines) ---------- *)

module Protocol = struct
  type state = { mutable credits : (string * int) list }

  let create () = { credits = [] }

  let credit state kind =
    match List.assoc_opt kind state.credits with Some c -> c | None -> 0

  let set_credit state kind c =
    state.credits <- (kind, c) :: List.remove_assoc kind state.credits

  let verify state = function
    | Record.Commit payload -> (
        match parse_event payload with
        | Some (_, c) -> c >= 0 && c <= 16
        | None ->
            (* free-form state-change commits (leader flags, committed
               markers) are always legal protocol bookkeeping *)
            true)
    | Record.Comm { Record.payload; _ } -> (
        (* A paxos message may only leave if the protocol committed a
           matching event first (§III-C's send verification routine). *)
        match decode_pmsg payload with
        | Ok m -> credit state (kind_of_pmsg m) > 0
        | Error _ -> false)
    | Record.Recv _ -> true
    | Record.Mirrored _ -> true

  let apply state = function
    | Record.Commit payload -> (
        match parse_event payload with
        | Some (kind, c) -> set_credit state kind (credit state kind + c)
        | None -> ())
    | Record.Comm { Record.payload; _ } -> (
        match decode_pmsg payload with
        | Ok m ->
            let kind = kind_of_pmsg m in
            set_credit state kind (credit state kind - 1)
        | Error _ -> ())
    | Record.Recv _ | Record.Mirrored _ -> ()

  let digest state =
    let sorted = List.sort compare state.credits in
    Bp_crypto.Sha256.digest
      (String.concat ";"
         (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) sorted))

  let describe state =
    String.concat ","
      (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c)
         (List.sort compare state.credits))
end

(* ---------- the user-space driver ---------- *)

type election = {
  eballot : ballot;
  mutable votes : int;
  mutable max_accepted : (int * ballot * string) list;
  mutable edone : bool;
  on_elected : bool -> unit;
}

type proposal = {
  pballot : ballot;
  inst : int;
  value : string;
  mutable acks : int;
  mutable pdone : bool;
  on_result : bool -> unit;
}

type t = {
  api : Api.t;
  me : int;
  n : int;
  mutable r : ballot; (* our proposal number, initially unique (= me) *)
  mutable l : bool; (* am I a leader *)
  mutable max_val : string option;
  mutable promised : ballot;
  mutable accepted : (int * (ballot * string)) list; (* acceptor, per instance *)
  mutable next_inst : int;
  mutable election : election option;
  mutable proposals : proposal list;
  mutable decided : (int * string) list;
}

let participant t = t.me
let is_leader t = t.l
let decided t = t.decided

let majority t = (t.n / 2) + 1

let others t = List.filter (fun p -> p <> t.me) (List.init t.n Fun.id)

(* Commit an event granting send credits, then send the message to every
   other participant. *)
let commit_and_broadcast t msg ~on_done =
  let kind = kind_of_pmsg msg in
  Api.log_commit t.api (event_payload kind (t.n - 1)) ~on_done:(fun () ->
      let payload = encode_pmsg msg in
      List.iter (fun dest -> Api.send t.api ~dest payload ~on_done:ignore) (others t);
      on_done ())

let commit_and_send t ~dest msg =
  let kind = kind_of_pmsg msg in
  Api.log_commit t.api (event_payload kind 1) ~on_done:(fun () ->
      Api.send t.api ~dest (encode_pmsg msg) ~on_done:ignore)

(* Acceptor side (the "other algorithms" of §VI-E). *)
let handle_prepare t ~src r =
  if ballot_gt r t.promised then begin
    t.promised <- r;
    let accepted = List.map (fun (i, (b, v)) -> (i, b, v)) t.accepted in
    commit_and_send t ~dest:src (Ppromise { r; ok = true; accepted })
  end
  else commit_and_send t ~dest:src (Ppromise { r; ok = false; accepted = [] })

let handle_propose t ~src r inst value =
  if ballot_ge r t.promised then begin
    t.promised <- r;
    t.accepted <- (inst, (r, value)) :: List.remove_assoc inst t.accepted;
    commit_and_send t ~dest:src (Paccept { r; inst; ok = true })
  end
  else commit_and_send t ~dest:src (Paccept { r; inst; ok = false })

let handle_promise t r ok accepted =
  match t.election with
  | Some e when e.eballot = r && not e.edone ->
      if not ok then begin
        e.edone <- true;
        t.election <- None;
        (* r = next unique proposal number (Algorithm 3, line 15). *)
        t.r <- { round = t.r.round + 1; node = t.me };
        Api.log_commit t.api (event_payload "le-failed" 0) ~on_done:ignore;
        e.on_elected false
      end
      else begin
        e.votes <- e.votes + 1;
        List.iter
          (fun (inst, b, v) ->
            let better =
              match List.find_opt (fun (i, _, _) -> i = inst) e.max_accepted with
              | Some (_, b', _) -> ballot_gt b b'
              | None -> true
            in
            if better then
              e.max_accepted <-
                (inst, b, v)
                :: List.filter (fun (i, _, _) -> i <> inst) e.max_accepted)
          accepted;
        if e.votes >= majority t then begin
          e.edone <- true;
          t.election <- None;
          t.l <- true;
          t.max_val <-
            (match e.max_accepted with (_, _, v) :: _ -> Some v | [] -> None);
          List.iter
            (fun (inst, _, _) ->
              t.next_inst <- Stdlib.max t.next_inst (inst + 1))
            e.max_accepted;
          (* log-commit (l, max-val) — Algorithm 3, line 13. *)
          Api.log_commit t.api (event_payload "le-won" 0) ~on_done:(fun () ->
              e.on_elected true)
        end
      end
  | _ -> ()

let handle_accept t r inst ok =
  match List.find_opt (fun p -> p.inst = inst && p.pballot = r) t.proposals with
  | Some p when not p.pdone ->
      if not ok then begin
        p.pdone <- true;
        (* Algorithm 3, lines 29-32: lose leadership, bump r. *)
        t.l <- false;
        t.r <- { round = t.r.round + 1; node = t.me };
        Api.log_commit t.api (event_payload "deposed" 0) ~on_done:(fun () ->
            p.on_result false)
      end
      else begin
        p.acks <- p.acks + 1;
        if p.acks >= majority t then begin
          p.pdone <- true;
          t.decided <- (p.inst, p.value) :: t.decided;
          (* log-commit (value committed) — Algorithm 3, line 28. *)
          Api.log_commit t.api (event_payload "committed" 0) ~on_done:(fun () ->
              p.on_result true)
        end
      end
  | _ -> ()

let on_message t ~src payload =
  match decode_pmsg payload with
  | Error _ -> ()
  | Ok (Pprepare { r }) -> handle_prepare t ~src r
  | Ok (Ppromise { r; ok; accepted }) -> handle_promise t r ok accepted
  | Ok (Ppropose { r; inst; value }) -> handle_propose t ~src r inst value
  | Ok (Paccept { r; inst; ok }) -> handle_accept t r inst ok

let attach api ~n_participants =
  let me = Api.participant api in
  let t =
    {
      api;
      me;
      n = n_participants;
      r = { round = 0; node = me };
      l = false;
      max_val = None;
      promised = { round = -1; node = -1 };
      accepted = [];
      next_inst = 0;
      election = None;
      proposals = [];
      decided = [];
    }
  in
  Api.on_receive api (fun ~src payload -> on_message t ~src payload);
  t

let elect t ~on_elected =
  t.r <- { round = t.r.round + 1; node = t.me };
  let e =
    {
      eballot = t.r;
      votes = 1 (* our own acceptor votes for us *);
      max_accepted = [];
      edone = false;
      on_elected;
    }
  in
  t.election <- Some e;
  if ballot_gt t.r t.promised then t.promised <- t.r;
  (* log-commit (Leader Election) then send paxos-prepare (lines 5-7). *)
  commit_and_broadcast t (Pprepare { r = t.r }) ~on_done:ignore

let replicate t value ~on_result =
  (* log-commit (Replication, value) — line 20. *)
  Api.log_commit t.api (event_payload "replication" 0) ~on_done:(fun () ->
      if not t.l then on_result false
      else begin
        let inst = t.next_inst in
        t.next_inst <- inst + 1;
        let p = { pballot = t.r; inst; value; acks = 1; pdone = false; on_result } in
        (* Our own acceptor accepts immediately. *)
        t.accepted <- (inst, (t.r, value)) :: List.remove_assoc inst t.accepted;
        t.proposals <- p :: t.proposals;
        commit_and_broadcast t (Ppropose { r = t.r; inst; value }) ~on_done:ignore
      end)
