open Bp_sim
open Bp_codec

type wmsg =
  | Propose of { leader : int; inst : int; value : string }
  | Accept of { leader : int; inst : int }

let encode_wmsg m =
  Wire.encode (fun e ->
      match m with
      | Propose { leader; inst; value } ->
          Wire.u8 e 0;
          Wire.varint e leader;
          Wire.varint e inst;
          Wire.string e value
      | Accept { leader; inst } ->
          Wire.u8 e 1;
          Wire.varint e leader;
          Wire.varint e inst)

let decode_wmsg s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 ->
          let leader = Wire.read_varint d in
          let inst = Wire.read_varint d in
          Propose { leader; inst; value = Wire.read_string d }
      | 1 ->
          let leader = Wire.read_varint d in
          let inst = Wire.read_varint d in
          Accept { leader; inst }
      | n -> raise (Wire.Malformed (Printf.sprintf "hier msg %d" n)))

type round = {
  inst : int;
  mutable acks : int;
  mutable rdone : bool;
  on_committed : unit -> unit;
}

type agent = {
  participant : int;
  transport : Bp_net.Transport.t; (* dedicated agent endpoint *)
  client : Bp_pbft.Client.t; (* into the local PBFT cluster *)
  mutable next_inst : int;
  mutable rounds : round list;
  mutable decided : int;
}

type t = {
  n : int;
  mutable agents : agent array;
}

let wide_tag = "hier.wide"

let majority t = (t.n / 2) + 1

let agent_addr p = Addr.make ~dc:p ~idx:80

let send_wide t ~from ~dest msg =
  Bp_net.Transport.send t.agents.(from).transport ~dst:(agent_addr dest)
    ~tag:wide_tag (encode_wmsg msg)

let on_wide t agent payload =
  match decode_wmsg payload with
  | Error _ -> ()
  | Ok (Propose { leader; inst; value }) ->
      (* Locally commit the accept through PBFT, then answer. *)
      Bp_pbft.Client.submit agent.client
        (Printf.sprintf "accept:%d:%d:%s" leader inst value)
        ~on_result:(fun _ -> send_wide t ~from:agent.participant ~dest:leader (Accept { leader; inst }))
  | Ok (Accept { leader; inst }) ->
      if leader = agent.participant then
        match List.find_opt (fun r -> r.inst = inst) agent.rounds with
        | Some r when not r.rdone ->
            r.acks <- r.acks + 1;
            if r.acks >= majority t then begin
              r.rdone <- true;
              (* Commit the decision locally before reporting. *)
              Bp_pbft.Client.submit agent.client
                (Printf.sprintf "decided:%d" inst)
                ~on_result:(fun _ ->
                  agent.decided <- agent.decided + 1;
                  r.on_committed ())
            end
        | _ -> ()

let create ~network ~n_participants ?(fi = 1) () =
  let engine = Network.engine network in
  let keystore =
    Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine))
  in
  let t = { n = n_participants; agents = [||] } in
  let agents =
    Array.init n_participants (fun p ->
        let nodes = Array.init ((3 * fi) + 1) (fun i -> Addr.make ~dc:p ~idx:i) in
        let cfg =
          Bp_pbft.Config.make ~nodes ~keystore ~tag:(Printf.sprintf "h%d" p) ()
        in
        Array.iteri
          (fun i addr ->
            let transport = Bp_net.Transport.create network addr in
            ignore
              (Bp_pbft.Replica.create transport cfg ~id:i
                 ~execute:(fun ~seq:_ r -> "ok:" ^ string_of_int (String.length r.Bp_pbft.Msg.op))
                 ()))
          nodes;
        let transport = Bp_net.Transport.create network (agent_addr p) in
        let client = Bp_pbft.Client.create transport cfg in
        let agent =
          { participant = p; transport; client; next_inst = 0; rounds = []; decided = 0 }
        in
        Bp_net.Transport.set_handler transport ~tag:wide_tag (fun ~src:_ payload ->
            on_wide t agent payload);
        agent)
  in
  t.agents <- agents;
  t

let replicate t ~leader value ~on_committed =
  let agent = t.agents.(leader) in
  let inst = agent.next_inst in
  agent.next_inst <- inst + 1;
  let r = { inst; acks = 1; rdone = false; on_committed } in
  agent.rounds <- r :: agent.rounds;
  (* Locally commit the replication intent, then go wide. *)
  Bp_pbft.Client.submit agent.client
    (Printf.sprintf "replicate:%d:%s" inst value)
    ~on_result:(fun _ ->
      for p = 0 to t.n - 1 do
        if p <> leader then send_wide t ~from:leader ~dest:p (Propose { leader; inst; value })
      done)

let decided_count t p = t.agents.(p).decided
