(** Paxos byzantized with Blockplane (§VI-E, Algorithm 3) —
    "Blockplane-Paxos" in the evaluation.

    The benign Paxos protocol is rewritten against the Blockplane API:
    every state change is log-committed and every message goes through
    [send]/[receive] (Definition 1). Byzantine behaviour inside a
    participant is masked by its unit, so the *wide-area* pattern stays
    exactly Paxos's: the Replication phase costs one round trip to the
    closest majority plus local-commitment overhead (Fig. 7).

    The protocol app ({!Protocol}) replays the Local Log on every unit
    node and enforces the verification routines: a communication record
    is only valid if a matching protocol event was committed before it
    (so a byzantine node cannot emit paxos messages the protocol never
    produced), and received records must be genuine (middleware checks). *)

module Protocol : Blockplane.App.S

type t

val attach : Blockplane.Api.t -> n_participants:int -> t
(** Bind a driver to a participant's API (installs the receive handler). *)

val participant : t -> int
val is_leader : t -> bool

val elect : t -> on_elected:(bool -> unit) -> unit
(** Algorithm 3's LeaderElection routine: commit the event, send
    paxos-prepare to the other participants, collect promises. The
    callback reports whether a majority of positive votes was reached. *)

val replicate : t -> string -> on_result:(bool -> unit) -> unit
(** Algorithm 3's Replication routine. [on_result true] fires after a
    majority of positive paxos-accept votes and the final
    ["value committed"] log-commit — the latency the paper measures.
    [false] = lost leadership (a higher ballot was observed). *)

val decided : t -> (int * string) list
(** (instance, value) pairs this leader committed, newest first. *)
