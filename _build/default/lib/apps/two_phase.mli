(** Byzantized two-phase commit — the transaction-processing use case the
    paper motivates in §III-C ("a transaction processing application would
    have verification routines to check whether a transaction can
    commit").

    A coordinator participant drives atomic transactions across cohort
    participants, each holding a partition of a key-value store. The
    protocol is plain, benign 2PC written against the Blockplane API; the
    verification routines make each step unfakeable by a byzantine
    replica:

    - a cohort's YES vote only verifies if the prepare message was
      genuinely received *and* its operation really applies to the
      cohort's current partition state;
    - the coordinator's COMMIT decision only verifies once every cohort's
      YES vote has been received (a byzantine node cannot commit a
      transaction that any cohort refused);
    - a cohort only applies an operation after the decision was received.

    All messages travel through [send]/[receive]; every state change is
    log-committed first (Definition 1). *)

module Protocol : Blockplane.App.S

type t

val attach_coordinator : Blockplane.Api.t -> t
(** Bind the coordinator role to a participant's API. *)

val attach_cohort : Blockplane.Api.t -> unit
(** Install the cohort automaton: votes on prepares (after committing the
    vote), applies decisions. *)

type outcome = Committed | Aborted

val submit :
  t ->
  ops:(int * Bp_storage.Kv.op) list ->
  on_decided:(outcome -> unit) ->
  unit
(** Run one transaction: one KV operation per cohort participant.
    [on_decided] fires after the decision is durably committed at the
    coordinator; COMMIT requires every cohort to have voted YES. *)

val partition_get : Blockplane.Unit_node.t -> string -> string option
(** Read a key from a node's replica of its participant's partition. *)

val decided_count : t -> int * int
(** (committed, aborted) transactions at this coordinator. *)
