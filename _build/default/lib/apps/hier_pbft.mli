(** The "Hierarchical PBFT" baseline of §VIII-D.

    Same communication pattern as Blockplane-Paxos — PBFT inside each
    datacenter, Paxos-style wide-area replication — but *without* the
    Blockplane API separation: protocol steps are committed in the local
    PBFT log, while wide-area messages go directly over the network (no
    transmission-record signing, no receive-side commitment before
    processing). Its latency therefore falls between plain Paxos and
    Blockplane-Paxos (Fig. 7). *)

type t

val create :
  network:Bp_sim.Network.t ->
  n_participants:int ->
  ?fi:int ->
  unit ->
  t
(** Builds one PBFT cluster of 3fi+1 nodes per datacenter (tags
    ["h<p>"]) plus a replication agent per participant. *)

val replicate : t -> leader:int -> string -> on_committed:(unit -> unit) -> unit
(** Replication round driven from [leader]: locally commit the intent,
    send proposals to the other participants, each locally commits an
    accept and replies, the leader locally commits the decision once a
    majority answered. *)

val decided_count : t -> int -> int
(** Values decided at a participant's agent. *)
