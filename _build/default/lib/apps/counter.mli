(** The distributed counting protocol of §III-C (Algorithm 1), byzantized
    with Blockplane.

    Each participant keeps a counter, initially 0. A user triggers a
    request at participant A addressed to participant B; A log-commits the
    request and sends a message; when B receives it, B log-commits an
    increment event and bumps its counter.

    The three verification routines of the paper are implemented in
    {!Protocol.verify}:
    - a [request] commit is accepted from the trusted user source;
    - a communication record is only valid if an unconsumed user request
      to that destination was committed before it;
    - an [increment-counter] commit is only valid if an unconsumed
      received message exists — so a byzantine node cannot inflate the
      counter (the attack discussed in §III-C). *)

module Protocol : Blockplane.App.S

type t
(** The user-space driver bound to one participant's API. *)

val attach : Blockplane.Api.t -> t
(** Installs the StartServer loop: each received message is log-committed
    as an increment. *)

val user_request : t -> dest:int -> on_done:(unit -> unit) -> unit
(** Algorithm 1's UserRequest event: log-commit the request, then send. *)

val value : Blockplane.Unit_node.t -> int
(** Counter value in a node's replica of the protocol state. *)
