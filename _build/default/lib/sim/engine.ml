type timer = { mutable cancelled : bool }

type event = {
  fire_at : Time.t;
  seq : int;
  action : unit -> unit;
  timer : timer;
  repeat : Time.t option;
}

module Heap = struct
  (* Binary min-heap ordered by (fire_at, seq). *)
  type t = { mutable a : event array; mutable len : int }

  let dummy =
    {
      fire_at = Time.zero;
      seq = -1;
      action = ignore;
      timer = { cancelled = true };
      repeat = None;
    }

  let create () = { a = Array.make 64 dummy; len = 0 }

  let less x y =
    let c = Time.compare x.fire_at y.fire_at in
    if c <> 0 then c < 0 else x.seq < y.seq

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h.a.(i) h.a.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
    if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some top ->
        h.len <- h.len - 1;
        h.a.(0) <- h.a.(h.len);
        h.a.(h.len) <- dummy;
        if h.len > 0 then sift_down h 0;
        Some top
end

type t = {
  heap : Heap.t;
  mutable clock : Time.t;
  mutable next_seq : int;
  rng : Bp_util.Rng.t;
}

let create ?(seed = 1L) () =
  { heap = Heap.create (); clock = Time.zero; next_seq = 0; rng = Bp_util.Rng.create seed }

let now t = t.clock
let rng t = t.rng

let enqueue t ~at ~repeat ~timer action =
  let e = { fire_at = at; seq = t.next_seq; action; timer; repeat } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e;
  timer

let schedule_at t at action =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: in the past";
  enqueue t ~at ~repeat:None ~timer:{ cancelled = false } action

let schedule t ~after action =
  enqueue t ~at:(Time.add t.clock after) ~repeat:None ~timer:{ cancelled = false } action

let periodic t ~every action =
  if Time.to_ns every <= 0 then invalid_arg "Engine.periodic: period must be positive";
  enqueue t ~at:(Time.add t.clock every) ~repeat:(Some every)
    ~timer:{ cancelled = false } action

let cancel (timer : timer) = timer.cancelled <- true

let pending t =
  let n = ref 0 in
  for i = 0 to t.heap.Heap.len - 1 do
    if not t.heap.Heap.a.(i).timer.cancelled then incr n
  done;
  !n

let step t =
  let rec next () =
    match Heap.pop t.heap with
    | None -> false
    | Some e ->
        if e.timer.cancelled then next ()
        else begin
          (* Re-arm periodic timers before running the action so the
             action can cancel its own timer. *)
          (match e.repeat with
          | Some every ->
              ignore
                (enqueue t ~at:(Time.add e.fire_at every) ~repeat:(Some every)
                   ~timer:e.timer e.action)
          | None -> ());
          t.clock <- e.fire_at;
          e.action ();
          true
        end
  in
  next ()

let run ?until ?(max_events = 50_000_000) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some e ->
        let beyond =
          match until with Some u -> Time.(e.fire_at > u) | None -> false
        in
        if beyond then begin
          (match until with Some u -> t.clock <- Time.max t.clock u | None -> ());
          continue := false
        end
        else if e.timer.cancelled then ignore (Heap.pop t.heap)
        else begin
          ignore (step t);
          incr fired;
          if !fired >= max_events then
            failwith "Engine.run: max_events exceeded (runaway simulation?)"
        end
  done
