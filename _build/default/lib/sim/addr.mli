(** Node addresses: a node lives in a datacenter and has an index within
    it. Clients and auxiliary processes also get addresses (with a
    distinguishing index range chosen by the deployment). *)

type t = { dc : int; idx : int }

val make : dc:int -> idx:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
