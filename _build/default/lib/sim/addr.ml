type t = { dc : int; idx : int }

let make ~dc ~idx = { dc; idx }

let compare a b =
  let c = Int.compare a.dc b.dc in
  if c <> 0 then c else Int.compare a.idx b.idx

let equal a b = compare a b = 0
let to_string a = Printf.sprintf "n%d.%d" a.dc a.idx
let pp ppf a = Format.pp_print_string ppf (to_string a)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash a = (a.dc * 8191) + a.idx
end)
