lib/sim/time.ml: Format Stdlib
