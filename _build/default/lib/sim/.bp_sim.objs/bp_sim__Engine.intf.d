lib/sim/engine.mli: Bp_util Time
