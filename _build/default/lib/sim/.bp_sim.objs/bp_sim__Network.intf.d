lib/sim/network.mli: Addr Engine Topology
