lib/sim/network.ml: Addr Array Bp_util Bytes Char Engine List Printf String Time Topology
