lib/sim/topology.ml: Array Fun List String Time
