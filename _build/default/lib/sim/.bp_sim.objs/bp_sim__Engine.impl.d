lib/sim/engine.ml: Array Bp_util Time
