lib/sim/addr.ml: Format Hashtbl Int Map Printf Set
