lib/sim/addr.mli: Format Hashtbl Map Set
