lib/sim/topology.mli: Time
