(** Virtual time. A point in time and a duration share the same
    representation: integer nanoseconds since simulation start. *)

type t = private int

val zero : t
val of_ns : int -> t
val of_us : int -> t
val of_ms : float -> t
val of_sec : float -> t

val to_ns : t -> int
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b]. @raise Invalid_argument if negative. *)

val scale : t -> float -> t
val max : t -> t -> t
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-friendly: "12.345ms". *)
