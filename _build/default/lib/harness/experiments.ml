type t = {
  id : string;
  title : string;
  run : scale:float -> Report.t list;
}

let all =
  [
    {
      id = "table1";
      title = "RTT matrix between the four datacenters (simulator input)";
      run = (fun ~scale:_ -> Exp_comm.table1 ());
    };
    {
      id = "fig4";
      title = "Local commitment latency/throughput vs batch size";
      run = (fun ~scale -> Exp_local.fig4 ~scale ());
    };
    {
      id = "table2";
      title = "Local commitment vs number of nodes";
      run = (fun ~scale -> Exp_local.table2 ~scale ());
    };
    {
      id = "fig5";
      title = "Geo-correlated fault tolerance latency";
      run = (fun ~scale -> Exp_geo.fig5 ~scale ());
    };
    {
      id = "fig6";
      title = "Communication latency between participants";
      run = (fun ~scale -> Exp_comm.fig6 ~scale ());
    };
    {
      id = "fig7";
      title = "Byzantized paxos vs baselines";
      run = (fun ~scale -> Exp_consensus.fig7 ~scale ());
    };
    {
      id = "fig8";
      title = "Reacting to failures";
      run = (fun ~scale -> Exp_geo.fig8 ~scale ());
    };
    (* Ablations beyond the paper's figures. *)
    {
      id = "ablation-reads";
      title = "Read strategies (SVI-A) latency";
      run = (fun ~scale -> Exp_ablation.reads ~scale ());
    };
    {
      id = "ablation-batch";
      title = "Group commit (SVI-C) on/off";
      run = (fun ~scale -> Exp_ablation.batching ~scale ());
    };
    {
      id = "ablation-sig";
      title = "HMAC vs hash-based signatures";
      run = (fun ~scale -> Exp_ablation.signatures ~scale ());
    };
    {
      id = "ablation-loss";
      title = "Commit latency under packet loss";
      run = (fun ~scale -> Exp_ablation.loss ~scale ());
    };
    {
      id = "ablation-load";
      title = "Offered load vs latency (open loop)";
      run = (fun ~scale -> Exp_ablation.load ~scale ());
    };
    {
      id = "locality";
      title = "Intra-DC vs wide-area traffic share (SIII-A)";
      run = (fun ~scale -> Exp_locality.locality ~scale ());
    };
    {
      id = "costs";
      title = "Resource costs of byzantizing (SVI-D)";
      run = (fun ~scale -> Exp_costs.costs ~scale ());
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_all ?(scale = 1.0) () = List.concat_map (fun e -> e.run ~scale) all
