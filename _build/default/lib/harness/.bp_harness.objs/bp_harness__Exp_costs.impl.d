lib/harness/exp_costs.ml: Api App Blockplane Bp_sim Deployment Engine Int64 List Network Printf Report Runner Time Topology
