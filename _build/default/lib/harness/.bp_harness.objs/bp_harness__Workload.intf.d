lib/harness/workload.mli: Bp_sim Bp_util
