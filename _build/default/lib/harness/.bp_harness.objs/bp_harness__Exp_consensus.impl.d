lib/harness/exp_consensus.ml: Addr Array Blockplane Bp_apps Bp_crypto Bp_net Bp_paxos Bp_pbft Bp_sim Bp_util Engine Int64 List Network Printf Report Runner Time Topology
