lib/harness/exp_local.mli: Report
