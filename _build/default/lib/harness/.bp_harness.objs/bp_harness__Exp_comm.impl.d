lib/harness/exp_comm.ml: Api Blockplane Bp_sim Bp_util Comm_daemon Deployment Engine Hashtbl Int64 List Printf Report Runner String Time Topology
