lib/harness/exp_ablation.mli: Report
