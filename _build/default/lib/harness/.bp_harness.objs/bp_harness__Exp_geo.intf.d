lib/harness/exp_geo.mli: Report
