lib/harness/exp_costs.mli: Report
