lib/harness/workload.ml: Bp_sim Bp_util Engine Option Time
