lib/harness/runner.mli: Blockplane Bp_sim Bp_util
