lib/harness/report.ml: Bp_util Buffer List Printf
