lib/harness/report.mli:
