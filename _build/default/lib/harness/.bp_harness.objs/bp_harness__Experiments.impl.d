lib/harness/experiments.ml: Exp_ablation Exp_comm Exp_consensus Exp_costs Exp_geo Exp_local Exp_locality List Report String
