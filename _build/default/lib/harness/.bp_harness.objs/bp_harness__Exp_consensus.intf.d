lib/harness/exp_consensus.mli: Report
