lib/harness/exp_local.ml: Api Blockplane Bp_sim Bp_util Deployment Engine Int64 List Printf Report Runner Stdlib Time
