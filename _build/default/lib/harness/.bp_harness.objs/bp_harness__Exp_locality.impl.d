lib/harness/exp_locality.ml: Addr Array Blockplane Bp_apps Bp_crypto Bp_net Bp_pbft Bp_sim Bp_util Engine Network Printf Report Runner Time Topology
