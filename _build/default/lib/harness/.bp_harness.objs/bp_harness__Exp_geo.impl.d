lib/harness/exp_geo.ml: Addr Api Array Blockplane Bp_net Bp_sim Bp_util Deployment Engine Int64 List Network Printf Report Runner Stdlib String Time Topology
