lib/harness/exp_ablation.ml: Api App Blockplane Bp_sim Bp_util Deployment Engine Int64 List Network Printf Queue Record Report Runner Stdlib Time Topology Workload
