lib/harness/runner.ml: Blockplane Bp_sim Bp_util Bytes Engine Float Network Printf Stdlib String Topology
