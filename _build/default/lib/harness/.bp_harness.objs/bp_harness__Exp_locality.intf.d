lib/harness/exp_locality.mli: Report
