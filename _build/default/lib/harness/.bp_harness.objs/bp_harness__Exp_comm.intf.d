lib/harness/exp_comm.mli: Report
