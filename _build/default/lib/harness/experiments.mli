(** The experiment registry: every table and figure of §VIII, by id. *)

type t = {
  id : string;
  title : string;
  run : scale:float -> Report.t list;
}

val all : t list
(** In paper order: table1, fig4, table2, fig5, fig6, fig7, fig8 — then
    the ablations (ablation-reads, -batch, -sig, -loss). *)

val find : string -> t option

val run_all : ?scale:float -> unit -> Report.t list
