(** Shared experiment machinery: deterministic worlds over the paper's
    AWS topology and CPS-style measurement loops (the simulator is
    event-driven, so sequential workloads are chained through callbacks). *)

type world = {
  engine : Bp_sim.Engine.t;
  net : Bp_sim.Network.t;
  dep : Blockplane.Deployment.t;
}

val fresh_world :
  ?fi:int ->
  ?fg:int ->
  ?seed:int64 ->
  ?n_participants:int ->
  ?app:(unit -> Blockplane.App.instance) ->
  unit ->
  world

val payload : size:int -> int -> string
(** Deterministic batch contents of the given byte size (the index makes
    successive batches distinct). *)

val sequential :
  Bp_sim.Engine.t ->
  n:int ->
  warmup:int ->
  run_one:(int -> on_done:(float -> unit) -> unit) ->
  Bp_util.Stats.t
(** Run [warmup + n] operations strictly one after another; [run_one i]
    must eventually call [on_done latency_ms]. Returns the statistics of
    the measured (post-warmup) operations. Drives the engine itself. *)

val scaled : float -> int -> int
(** [scaled s n] = max 1 (round (s * n)) — workload scaling. *)
