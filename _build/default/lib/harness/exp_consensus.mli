(** §VIII-D (Fig. 7) — global consensus: the Replication-phase latency of
    Blockplane-Paxos against plain Paxos, flat geo-PBFT and Hierarchical
    PBFT, with the leader placed at each of the four datacenters. *)

val fig7 : ?scale:float -> unit -> Report.t list
