open Bp_sim
open Blockplane

(* A synthetic six-datacenter topology: Blockplane is not wired to the
   paper's four AWS regions. *)
let six_dc_topology =
  let n = 6 in
  let rtt = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then rtt.(i).(j) <- 20.0 +. (15.0 *. float_of_int (abs (i - j)))
    done
  done;
  Topology.make
    ~names:(Array.init n (fun i -> Printf.sprintf "DC%d" i))
    ~rtt_ms:rtt ()

let test_six_participants_ring () =
  let engine = Engine.create ~seed:91L () in
  let net = Network.create engine six_dc_topology () in
  let dep =
    Deployment.create ~network:net ~n_participants:6 ~fi:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let received = Array.make 6 None in
  for p = 0 to 5 do
    Api.on_receive (Deployment.api dep p) (fun ~src payload ->
        received.(p) <- Some (src, payload))
  done;
  (* A ring of messages: p -> p+1. *)
  for p = 0 to 5 do
    Api.send (Deployment.api dep p) ~dest:((p + 1) mod 6)
      (Printf.sprintf "ring-%d" p)
      ~on_done:ignore
  done;
  Engine.run ~until:(Time.of_sec 5.0) engine;
  for p = 0 to 5 do
    Alcotest.(check (option (pair int string)))
      (Printf.sprintf "participant %d" p)
      (Some ((p + 5) mod 6, Printf.sprintf "ring-%d" ((p + 5) mod 6)))
      received.(p);
    Alcotest.(check bool)
      (Printf.sprintf "unit %d agreement" p)
      true
      (Deployment.logs_agree dep p)
  done

let test_view_change_under_load () =
  (* The unit's PBFT primary dies while a burst of commits is in flight;
     every request must still be served after the view change. *)
  let engine = Engine.create ~seed:92L () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:1 ~fi:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let api = Deployment.api dep 0 in
  let served = ref 0 in
  let burst = 30 in
  for i = 1 to burst do
    Api.log_commit api (Printf.sprintf "burst-%d" i) ~on_done:(fun () -> incr served)
  done;
  (* Kill the primary (node 0) almost immediately. *)
  ignore
    (Engine.schedule engine ~after:(Time.of_ms 0.4) (fun () ->
         Network.crash net (Addr.make ~dc:0 ~idx:0)));
  Engine.run ~until:(Time.of_sec 30.0) engine;
  Alcotest.(check int) "every request served across the view change" burst !served;
  (* The surviving replicas agree. *)
  let l1 = Unit_node.log (Deployment.node dep 0 1) in
  let l2 = Unit_node.log (Deployment.node dep 0 2) in
  let len = Stdlib.min (Bp_storage.Log_store.length l1) (Bp_storage.Log_store.length l2) in
  Alcotest.(check bool) "progress" true (len >= burst);
  Alcotest.(check string) "survivors agree"
    (Bp_util.Hex.encode (Bp_storage.Log_store.digest_at l1 len))
    (Bp_util.Hex.encode (Bp_storage.Log_store.digest_at l2 len))

let test_geo_fg2_survives_one_mirror_loss () =
  (* fg=2: proofs from two other participants. Losing one mirror still
     leaves two candidates — commits must keep flowing. *)
  let engine = Engine.create ~seed:93L () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi:1 ~fg:2
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let api = Deployment.api dep Topology.dc_california in
  let latencies = ref [] in
  let commit i ~k =
    let t0 = Engine.now engine in
    Api.log_commit api (Printf.sprintf "e%d" i) ~on_done:(fun () ->
        latencies := Time.to_ms (Time.diff (Engine.now engine) t0) :: !latencies;
        k ())
  in
  let rec before i =
    if i <= 2 then commit i ~k:(fun () -> before (i + 1))
    else begin
      Network.crash_dc net Topology.dc_oregon;
      after 3
    end
  and after i = if i <= 5 then commit i ~k:(fun () -> after (i + 1)) in
  before 1;
  Engine.run ~until:(Time.of_sec 15.0) engine;
  match List.rev !latencies with
  | [ b1; b2; a1; a2; a3 ] ->
      (* Before: proofs from O+V (bounded by V's 61 ms RTT). *)
      Alcotest.(check bool) "before ~64ms" true (b1 > 55.0 && b2 < 75.0);
      (* After Oregon dies: proofs from V+I (bounded by I's 130 ms RTT);
         the first commit also pays the suspicion delay. *)
      Alcotest.(check bool) "failover spike" true (a1 > 130.0);
      Alcotest.(check bool) "steady state ~135ms" true (a2 > 125.0 && a3 < 160.0)
  | l -> Alcotest.failf "expected 5 commits, got %d" (List.length l)

let test_full_stack_corruption () =
  (* In-flight corruption at the datagram layer, across the whole stack:
     frames catch the flips, the transport retransmits, Blockplane
     delivers exactly once. *)
  let engine = Engine.create ~seed:95L () in
  let faults = { Network.no_faults with corrupt = 0.05 } in
  let net = Network.create engine Topology.aws_paper ~faults () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let got = ref [] in
  Api.on_receive (Deployment.api dep 1) (fun ~src:_ p -> got := p :: !got);
  for i = 1 to 6 do
    Api.send (Deployment.api dep 0) ~dest:1 (Printf.sprintf "c%d" i) ~on_done:ignore
  done;
  Engine.run ~until:(Time.of_sec 20.0) engine;
  Alcotest.(check (list string)) "exactly once despite corruption"
    (List.init 6 (fun i -> Printf.sprintf "c%d" (i + 1)))
    (List.rev !got);
  Alcotest.(check bool) "corruption actually happened" true
    ((Network.counters net).Network.corrupted > 0)

let test_combined_fi2_fg1 () =
  (* Both fault dimensions at once: 7-node units and geo mirroring. *)
  let engine = Engine.create ~seed:96L () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi:2 ~fg:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  (* Two byzantine nodes in the committing unit. *)
  Bp_pbft.Replica.suppress_commit_votes
    (Unit_node.replica (Deployment.node dep 0 5))
    true;
  Unit_node.set_byzantine_sign_anything (Deployment.node dep 0 6) true;
  let api = Deployment.api dep 0 in
  let committed = ref 0 in
  let got = ref None in
  Api.on_receive (Deployment.api dep 1) (fun ~src:_ p -> got := Some p);
  Api.log_commit api "combined" ~on_done:(fun () -> incr committed);
  Api.send api ~dest:1 "combined-msg" ~on_done:(fun () -> incr committed);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check int) "commit and send proved" 2 !committed;
  Alcotest.(check (option string)) "delivered with geo proofs" (Some "combined-msg") !got;
  Alcotest.(check bool) "entries geo-proved" true
    (Geo.is_proved (Deployment.geo dep 0) ~pos:0)

let test_deployment_validation () =
  let engine = Engine.create ~seed:94L () in
  let net = Network.create engine Topology.aws_paper () in
  (try
     ignore
       (Deployment.create ~network:net ~n_participants:9 ~fi:1
          ~app:(fun () -> App.make (module App.Null))
          ());
     Alcotest.fail "too many participants accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Deployment.create ~network:net ~n_participants:2 ~fi:1 ~fg:2
         ~app:(fun () -> App.make (module App.Null))
         ());
    Alcotest.fail "impossible fg accepted"
  with Invalid_argument _ -> ()

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "scale",
      [
        tc "six participants on a custom topology" test_six_participants_ring;
        tc "view change under load" test_view_change_under_load;
        tc "fg=2 survives a mirror loss" test_geo_fg2_survives_one_mirror_loss;
        tc "full-stack corruption" test_full_stack_corruption;
        tc "combined fi=2 fg=1" test_combined_fi2_fg1;
        tc "deployment validation" test_deployment_validation;
      ] );
  ]
