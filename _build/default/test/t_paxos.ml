open Bp_sim
open Bp_paxos

let test_ballot_ordering () =
  let b1 = Ballot.next Ballot.zero ~node:2 in
  let b2 = Ballot.next Ballot.zero ~node:3 in
  Alcotest.(check bool) "node breaks ties" true Ballot.(b2 > b1);
  let b3 = Ballot.next b2 ~node:0 in
  Alcotest.(check bool) "round dominates" true Ballot.(b3 > b2);
  Alcotest.(check bool) "zero smallest" true Ballot.(b1 > Ballot.zero)

let test_msg_roundtrip () =
  let b = Ballot.next Ballot.zero ~node:1 in
  let msgs =
    [
      Msg.Prepare { ballot = b; from_instance = 7 };
      Msg.Promise
        {
          ballot = b;
          ok = true;
          accepted = [ { Msg.instance = 3; ballot = b; value = "v" } ];
        };
      Msg.Promise { ballot = b; ok = false; accepted = [] };
      Msg.Propose { ballot = b; instance = 9; value = "payload" };
      Msg.Accepted { ballot = b; instance = 9; ok = true };
      Msg.Learn { instance = 4; value = "chosen" };
    ]
  in
  List.iter
    (fun m ->
      match Msg.decode (Msg.encode m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

(* One paxos node per datacenter, as in the Fig. 7 deployment. *)
type cluster = {
  engine : Engine.t;
  net : Network.t;
  replicas : Replica.t array;
  learned : (int * string) list ref array;
}

let make_cluster ?(n = 4) ?faults ?(auto_retry = false) ?(seed = 21L) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let addrs = Array.init n (fun i -> Addr.make ~dc:(i mod 4) ~idx:0) in
  let cfg = { Replica.nodes = addrs; election_timeout = Time.of_ms 400.0 } in
  let learned = Array.init n (fun _ -> ref []) in
  let replicas =
    Array.init n (fun i ->
        let transport = Bp_net.Transport.create net addrs.(i) in
        Replica.create ~auto_retry transport cfg ~id:i ~on_learn:(fun inst v ->
            learned.(i) := (inst, v) :: !(learned.(i))))
  in
  { engine; net; replicas; learned }

let test_single_leader_commits () =
  let c = make_cluster () in
  let elected = ref false and committed = ref [] in
  Replica.try_lead c.replicas.(0) ~on_elected:(fun () ->
      elected := true;
      Replica.propose c.replicas.(0) "value-1" ~on_commit:(fun i ->
          committed := i :: !committed);
      Replica.propose c.replicas.(0) "value-2" ~on_commit:(fun i ->
          committed := i :: !committed));
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Alcotest.(check bool) "elected" true !elected;
  Alcotest.(check bool) "leader flag" true (Replica.is_leader c.replicas.(0));
  Alcotest.(check (list int)) "both instances" [ 0; 1 ] (List.sort compare !committed);
  Alcotest.(check (option string)) "instance 0" (Some "value-1")
    (Replica.chosen c.replicas.(0) 0)

let test_all_learners_agree () =
  let c = make_cluster () in
  Replica.try_lead c.replicas.(1) ~on_elected:(fun () ->
      List.iter
        (fun v -> Replica.propose c.replicas.(1) v ~on_commit:ignore)
        [ "a"; "b"; "c" ]);
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Array.iteri
    (fun i learned ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "node %d learned all" i)
        [ (0, "a"); (1, "b"); (2, "c") ]
        (List.sort compare !learned))
    c.learned

let test_propose_requires_leadership () =
  let c = make_cluster () in
  try
    Replica.propose c.replicas.(0) "v" ~on_commit:ignore;
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let test_commit_latency_is_majority_rtt () =
  (* Leader in California: closest majority = {C, O, V}, so the
     Replication phase should take ~61 ms (RTT C-V), within 10%. *)
  let c = make_cluster () in
  let done_at = ref Time.zero and started = ref Time.zero in
  Replica.try_lead c.replicas.(Topology.dc_california) ~on_elected:(fun () ->
      started := Engine.now c.engine;
      Replica.propose c.replicas.(Topology.dc_california) "v"
        ~on_commit:(fun _ -> done_at := Engine.now c.engine));
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  let ms = Time.to_ms (Time.diff !done_at !started) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1fms close to 61ms" ms)
    true
    (ms >= 61.0 && ms < 68.0)

let test_leader_change_preserves_values () =
  let c = make_cluster () in
  (* Node 0 leads and commits one value. *)
  Replica.try_lead c.replicas.(0) ~on_elected:(fun () ->
      Replica.propose c.replicas.(0) "stable" ~on_commit:ignore);
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  (* Node 2 takes over; previously chosen values must survive. *)
  let elected = ref false in
  Replica.try_lead c.replicas.(2) ~on_elected:(fun () ->
      elected := true;
      Replica.propose c.replicas.(2) "after" ~on_commit:ignore);
  Engine.run ~until:(Time.of_sec 4.0) c.engine;
  Alcotest.(check bool) "second election succeeded" true !elected;
  Alcotest.(check bool) "old leader deposed eventually" true
    (Replica.is_leader c.replicas.(2));
  Alcotest.(check (option string)) "instance 0 preserved" (Some "stable")
    (Replica.chosen c.replicas.(2) 0);
  Alcotest.(check (option string)) "new value in a fresh instance" (Some "after")
    (Replica.chosen c.replicas.(2) 1)

let test_deposed_leader_cannot_commit () =
  let c = make_cluster () in
  Replica.try_lead c.replicas.(0) ~on_elected:ignore;
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  Replica.try_lead c.replicas.(1) ~on_elected:ignore;
  Engine.run ~until:(Time.of_sec 4.0) c.engine;
  (* Node 0 still believes it leads; its proposal must be rejected and it
     must step down rather than commit. *)
  let committed = ref false in
  if Replica.is_leader c.replicas.(0) then begin
    Replica.propose c.replicas.(0) "zombie" ~on_commit:(fun _ -> committed := true);
    Engine.run ~until:(Time.of_sec 6.0) c.engine;
    Alcotest.(check bool) "zombie proposal rejected" false !committed;
    Alcotest.(check bool) "stepped down" false (Replica.is_leader c.replicas.(0))
  end

let test_survives_minority_crash () =
  let c = make_cluster () in
  Network.crash c.net (Addr.make ~dc:3 ~idx:0);
  let committed = ref false in
  Replica.try_lead c.replicas.(0) ~on_elected:(fun () ->
      Replica.propose c.replicas.(0) "v" ~on_commit:(fun _ -> committed := true));
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Alcotest.(check bool) "commits with one node down" true !committed

let test_blocks_without_majority () =
  let c = make_cluster () in
  Network.crash c.net (Addr.make ~dc:1 ~idx:0);
  Network.crash c.net (Addr.make ~dc:2 ~idx:0);
  Network.crash c.net (Addr.make ~dc:3 ~idx:0);
  let elected = ref false in
  Replica.try_lead c.replicas.(0) ~on_elected:(fun () -> elected := true);
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Alcotest.(check bool) "no quorum, no leader" false !elected

let test_duelling_leaders_liveness () =
  let c = make_cluster ~auto_retry:true ~seed:77L () in
  let commits = ref 0 in
  let propose_on r =
    Replica.try_lead r ~on_elected:(fun () ->
        if Replica.is_leader r then
          Replica.propose r "duel" ~on_commit:(fun _ -> incr commits))
  in
  propose_on c.replicas.(0);
  propose_on c.replicas.(3);
  Engine.run ~until:(Time.of_sec 30.0) c.engine;
  Alcotest.(check bool) "eventually some commit" true (!commits >= 1)

let test_safety_under_loss_and_duel () =
  (* Repeated randomized runs: lossy network, two duelling proposers with
     retries; whatever happens, learners must never disagree (the
     Conflicting_choice exception would fire). *)
  for seed = 1 to 15 do
    let faults = { Network.no_faults with drop = 0.15; duplicate = 0.1 } in
    let c = make_cluster ~faults ~auto_retry:true ~seed:(Int64.of_int seed) () in
    let try_commit r v =
      Replica.try_lead r ~on_elected:(fun () ->
          if Replica.is_leader r then (
            (try Replica.propose r v ~on_commit:ignore with Failure _ -> ());
            try Replica.propose r (v ^ "'") ~on_commit:ignore
            with Failure _ -> ()))
    in
    try_commit c.replicas.(0) "left";
    try_commit c.replicas.(2) "right";
    Engine.run ~until:(Time.of_sec 20.0) c.engine;
    (* Cross-check: all values learned anywhere agree per instance. *)
    let merged = Hashtbl.create 16 in
    Array.iter
      (fun learned ->
        List.iter
          (fun (i, v) ->
            match Hashtbl.find_opt merged i with
            | None -> Hashtbl.replace merged i v
            | Some v' ->
                Alcotest.(check string)
                  (Printf.sprintf "seed %d instance %d" seed i)
                  v' v)
          !learned)
      c.learned
  done

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "paxos.core",
      [
        tc "ballot ordering" test_ballot_ordering;
        tc "message roundtrip" test_msg_roundtrip;
        tc "single leader commits" test_single_leader_commits;
        tc "all learners agree" test_all_learners_agree;
        tc "propose requires leadership" test_propose_requires_leadership;
        tc "commit latency = majority RTT" test_commit_latency_is_majority_rtt;
        tc "leader change preserves values" test_leader_change_preserves_values;
        tc "deposed leader cannot commit" test_deposed_leader_cannot_commit;
        tc "survives minority crash" test_survives_minority_crash;
        tc "blocks without majority" test_blocks_without_majority;
        tc "duelling leaders liveness" test_duelling_leaders_liveness;
        tc "safety under loss and duel" test_safety_under_loss_and_duel;
      ] );
  ]
