open Bp_storage

let test_log_append_get () =
  let l = Log_store.create () in
  let e0 = Log_store.append l "first" in
  let e1 = Log_store.append l "second" in
  Alcotest.(check int) "indices" 0 e0.Log_store.index;
  Alcotest.(check int) "indices" 1 e1.Log_store.index;
  Alcotest.(check int) "length" 2 (Log_store.length l);
  Alcotest.(check (option string)) "get payload" (Some "second")
    (Option.map (fun e -> e.Log_store.payload) (Log_store.get l 1));
  Alcotest.(check (option string)) "out of range" None
    (Option.map (fun e -> e.Log_store.payload) (Log_store.get l 2))

let test_log_chain_digests_prefix () =
  let a = Log_store.create () and b = Log_store.create () in
  List.iter (fun p -> ignore (Log_store.append a p)) [ "x"; "y"; "z" ];
  List.iter (fun p -> ignore (Log_store.append b p)) [ "x"; "y" ];
  Alcotest.(check string) "same prefix digest" (Log_store.digest_at a 2)
    (Log_store.last_digest b);
  ignore (Log_store.append b "DIFFERENT");
  Alcotest.(check bool) "diverged" false
    (String.equal (Log_store.last_digest a) (Log_store.last_digest b))

let test_log_digest_depends_on_order () =
  let a = Log_store.create () and b = Log_store.create () in
  List.iter (fun p -> ignore (Log_store.append a p)) [ "x"; "y" ];
  List.iter (fun p -> ignore (Log_store.append b p)) [ "y"; "x" ];
  Alcotest.(check bool) "order sensitive" false
    (String.equal (Log_store.last_digest a) (Log_store.last_digest b))

let test_log_verify_chain_detects_tamper () =
  let l = Log_store.create () in
  List.iter (fun p -> ignore (Log_store.append l p)) [ "a"; "b"; "c" ];
  Alcotest.(check bool) "clean" true (Log_store.verify_chain l);
  Log_store.tamper l 1 "evil";
  Alcotest.(check bool) "tampered" false (Log_store.verify_chain l)

let test_log_iter_from () =
  let l = Log_store.create () in
  List.iter (fun p -> ignore (Log_store.append l p)) [ "a"; "b"; "c"; "d" ];
  let seen = ref [] in
  Log_store.iter_from l 2 (fun e -> seen := e.Log_store.payload :: !seen);
  Alcotest.(check (list string)) "suffix" [ "c"; "d" ] (List.rev !seen)

let test_log_growth () =
  let l = Log_store.create () in
  for i = 0 to 999 do
    ignore (Log_store.append l (string_of_int i))
  done;
  Alcotest.(check int) "length" 1000 (Log_store.length l);
  Alcotest.(check string) "spot check" "577" (Log_store.payload_exn l 577);
  Alcotest.(check bool) "chain intact" true (Log_store.verify_chain l)

let test_wal_roundtrip () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "one"; "two"; "three" ];
  let w', discarded = Wal.of_contents (Wal.contents w) in
  Alcotest.(check (list string)) "records" [ "one"; "two"; "three" ] (Wal.records w');
  Alcotest.(check int) "nothing discarded" 0 discarded

let test_wal_empty () =
  let w, discarded = Wal.of_contents "" in
  Alcotest.(check (list string)) "empty" [] (Wal.records w);
  Alcotest.(check int) "none discarded" 0 discarded

let test_wal_torn_tail () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "one"; "two"; "three" ];
  (* Lose part of the last record. *)
  let w' = Wal.truncate_tail w 2 in
  Alcotest.(check (list string)) "durable prefix" [ "one"; "two" ] (Wal.records w')

let test_wal_corrupt_middle_loses_suffix () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ "aaaa"; "bbbb"; "cccc" ];
  (* Corrupt a byte inside the second record's payload. *)
  let off = (2 * Bp_codec.Frame.overhead) + 4 + 2 in
  let w' = Wal.corrupt_byte w off in
  Alcotest.(check (list string)) "prefix before corruption" [ "aaaa" ] (Wal.records w')

let test_wal_total_loss () =
  let w = Wal.create () in
  Wal.append w "only";
  let w' = Wal.truncate_tail w (Wal.size w) in
  Alcotest.(check (list string)) "nothing" [] (Wal.records w')

let test_wal_garbage_prefix () =
  let w, discarded = Wal.of_contents "totally not a wal" in
  Alcotest.(check (list string)) "no records" [] (Wal.records w);
  Alcotest.(check bool) "discards counted" true (discarded > 0)

let test_kv_basic_ops () =
  let kv = Kv.create () in
  Alcotest.(check bool) "put" true (Kv.apply kv (Kv.Put ("a", "1")) = Kv.Applied);
  Alcotest.(check (option string)) "get" (Some "1") (Kv.get kv "a");
  Alcotest.(check bool) "delete" true (Kv.apply kv (Kv.Delete "a") = Kv.Applied);
  Alcotest.(check (option string)) "gone" None (Kv.get kv "a")

let test_kv_delete_missing_fails () =
  let kv = Kv.create () in
  (match Kv.apply kv (Kv.Delete "nope") with
  | Kv.Failed _ -> ()
  | Kv.Applied -> Alcotest.fail "expected failure");
  Alcotest.(check bool) "can_apply agrees" false (Kv.can_apply kv (Kv.Delete "nope"))

let test_kv_add () =
  let kv = Kv.create () in
  ignore (Kv.apply kv (Kv.Add ("n", 5)));
  ignore (Kv.apply kv (Kv.Add ("n", -2)));
  Alcotest.(check (option string)) "sum" (Some "3") (Kv.get kv "n");
  ignore (Kv.apply kv (Kv.Put ("s", "abc")));
  match Kv.apply kv (Kv.Add ("s", 1)) with
  | Kv.Failed _ -> ()
  | Kv.Applied -> Alcotest.fail "add on non-numeric applied"

let test_kv_cas () =
  let kv = Kv.create () in
  Alcotest.(check bool) "cas absent ok" true
    (Kv.apply kv (Kv.Cas ("k", None, "v1")) = Kv.Applied);
  Alcotest.(check bool) "cas with wrong expectation fails" true
    (match Kv.apply kv (Kv.Cas ("k", Some "other", "v2")) with
    | Kv.Failed _ -> true
    | Kv.Applied -> false);
  Alcotest.(check (option string)) "unchanged" (Some "v1") (Kv.get kv "k");
  Alcotest.(check bool) "cas right expectation" true
    (Kv.apply kv (Kv.Cas ("k", Some "v1", "v2")) = Kv.Applied);
  Alcotest.(check (option string)) "swapped" (Some "v2") (Kv.get kv "k")

let test_kv_failed_leaves_state () =
  let kv = Kv.create () in
  ignore (Kv.apply kv (Kv.Put ("x", "1")));
  let before = Kv.digest kv in
  ignore (Kv.apply kv (Kv.Cas ("x", Some "9", "2")));
  Alcotest.(check string) "digest unchanged" before (Kv.digest kv)

let test_kv_digest_equality () =
  let a = Kv.create () and b = Kv.create () in
  ignore (Kv.apply a (Kv.Put ("k1", "v1")));
  ignore (Kv.apply a (Kv.Put ("k2", "v2")));
  ignore (Kv.apply b (Kv.Put ("k2", "v2")));
  ignore (Kv.apply b (Kv.Put ("k1", "v1")));
  Alcotest.(check string) "insertion order irrelevant" (Kv.digest a) (Kv.digest b);
  ignore (Kv.apply b (Kv.Put ("k3", "v3")));
  Alcotest.(check bool) "state-sensitive" false
    (String.equal (Kv.digest a) (Kv.digest b))

let test_kv_copy_isolated () =
  let a = Kv.create () in
  ignore (Kv.apply a (Kv.Put ("k", "v")));
  let b = Kv.copy a in
  ignore (Kv.apply b (Kv.Put ("k", "changed")));
  Alcotest.(check (option string)) "original untouched" (Some "v") (Kv.get a "k")

let test_kv_op_codec_roundtrip () =
  List.iter
    (fun op ->
      match Kv.decode_op (Kv.encode_op op) with
      | Ok op' -> Alcotest.(check bool) "roundtrip" true (op = op')
      | Error e -> Alcotest.fail e)
    [
      Kv.Put ("key", "value");
      Kv.Delete "key";
      Kv.Add ("ctr", -17);
      Kv.Cas ("k", None, "v");
      Kv.Cas ("k", Some "old", "new");
    ]

let test_kv_decode_garbage () =
  match Kv.decode_op "\xffgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

let qcheck_kv_apply_deterministic =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun k v -> Kv.Put (k, v)) (string_size (1 -- 4)) (string_size (0 -- 4));
          map (fun k -> Kv.Delete k) (string_size (1 -- 4));
          map2 (fun k n -> Kv.Add (k, n)) (string_size (1 -- 4)) (int_range (-10) 10);
        ])
  in
  QCheck.Test.make ~name:"replaying ops gives identical digests" ~count:200
    (QCheck.make QCheck.Gen.(list_size (0 -- 30) op_gen))
    (fun ops ->
      let a = Kv.create () and b = Kv.create () in
      List.iter (fun op -> ignore (Kv.apply a op)) ops;
      List.iter (fun op -> ignore (Kv.apply b op)) ops;
      String.equal (Kv.digest a) (Kv.digest b))

let qcheck_wal_recovery_prefix =
  QCheck.Test.make ~name:"wal recovery yields a prefix" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 10) (string_of_size Gen.(0 -- 20))) small_nat)
    (fun (recs, cut) ->
      let w = Wal.create () in
      List.iter (Wal.append w) recs;
      let w' = Wal.truncate_tail w (cut mod (Wal.size w + 1)) in
      let recovered = Wal.records w' in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
        | _ :: _, [] -> false
      in
      is_prefix recovered recs)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "storage.log_store",
      [
        tc "append/get" test_log_append_get;
        tc "chain digests prefixes" test_log_chain_digests_prefix;
        tc "digest order-sensitive" test_log_digest_depends_on_order;
        tc "verify detects tamper" test_log_verify_chain_detects_tamper;
        tc "iter_from" test_log_iter_from;
        tc "growth" test_log_growth;
      ] );
    ( "storage.wal",
      [
        tc "roundtrip" test_wal_roundtrip;
        tc "empty image" test_wal_empty;
        tc "torn tail" test_wal_torn_tail;
        tc "corruption loses suffix only" test_wal_corrupt_middle_loses_suffix;
        tc "total loss" test_wal_total_loss;
        tc "garbage prefix" test_wal_garbage_prefix;
        QCheck_alcotest.to_alcotest qcheck_wal_recovery_prefix;
      ] );
    ( "storage.kv",
      [
        tc "basic ops" test_kv_basic_ops;
        tc "delete missing fails" test_kv_delete_missing_fails;
        tc "numeric add" test_kv_add;
        tc "cas" test_kv_cas;
        tc "failed op leaves state" test_kv_failed_leaves_state;
        tc "digest equality" test_kv_digest_equality;
        tc "copy isolation" test_kv_copy_isolated;
        tc "op codec roundtrip" test_kv_op_codec_roundtrip;
        tc "decode garbage" test_kv_decode_garbage;
        QCheck_alcotest.to_alcotest qcheck_kv_apply_deterministic;
      ] );
  ]
