open Bp_util

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let xs = List.init 8 (fun _ -> Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "children differ" false (Rng.int64 child1 = Rng.int64 child2)

let test_rng_copy () =
  let a = Rng.create 9L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies agree" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4L in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5L in
  Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.0)

let test_rng_bernoulli_rate () =
  let rng = Rng.create 6L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "close to 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_bytes_length () =
  let rng = Rng.create 8L in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (Bytes.length (Rng.bytes rng n)))
    [ 0; 1; 7; 8; 9; 63; 64; 100 ]

let test_rng_exponential_positive () =
  let rng = Rng.create 10L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng ~mean:5.0 >= 0.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11L in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_hex_roundtrip () =
  let rng = Rng.create 12L in
  for _ = 1 to 50 do
    let s = Bytes.to_string (Rng.bytes rng (Rng.int rng 64)) in
    Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s))
  done

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10ab" (Hex.encode "\x00\xff\x10\xab");
  Alcotest.(check string) "decode upper" "\xab" (Hex.decode "AB")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Hex.decode "zz"))

let test_stats_basics () =
  let s = Stats.create () in
  Stats.add_list s [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  Stats.add_list s [ 10.0; 20.0; 30.0; 40.0 ];
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 40.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "median" 25.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "p25" 17.5 (Stats.percentile s 25.0)

let test_stats_stddev () =
  let s = Stats.create () in
  Stats.add_list s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  (* Known sample: population sd 2, sample sd ~2.138 *)
  Alcotest.(check (float 1e-3)) "sample sd" 2.138 (Stats.stddev s)

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Alcotest.(check (float 1e-9)) "sd of one" 0.0 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "median of one" 5.0 (Stats.median s)

let test_stats_empty_raises () =
  let s = Stats.create () in
  Alcotest.(check bool) "is_empty" true (Stats.is_empty s);
  (try
     ignore (Stats.mean s);
     Alcotest.fail "expected raise"
   with Invalid_argument _ -> ())

let test_stats_unsorted_insert () =
  let s = Stats.create () in
  Stats.add_list s [ 5.0; 1.0; 3.0 ];
  Alcotest.(check (float 1e-9)) "median resorts" 3.0 (Stats.median s);
  Stats.add s 0.0;
  Alcotest.(check (float 1e-9)) "min after more adds" 0.0 (Stats.min s)

let test_stats_summary () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  let sum = Stats.summarize s in
  Alcotest.(check int) "n" 100 sum.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 50.5 sum.Stats.mean;
  Alcotest.(check (float 1e-9)) "p50" 50.5 sum.Stats.p50

let test_tablefmt_shape () =
  let out =
    Tablefmt.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (* border, header, separator, 2 rows, border, trailing "" *)
  Alcotest.(check int) "line count" 7 (List.length lines);
  List.iter
    (fun l ->
      if String.length l > 0 then
        Alcotest.(check bool) "consistent width" true
          (String.length l = String.length (List.hd lines)))
    lines

let test_tablefmt_pads_short_rows () =
  let out = Tablefmt.render ~header:[ "x"; "y"; "z" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip (qcheck)" ~count:500
    QCheck.(string_of_size Gen.(0 -- 128))
    (fun s -> Hex.decode (Hex.encode s) = s)

let qcheck_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      Stats.add_list s xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile s) ps in
      let rec mono = function
        | a :: b :: rest -> a <= b +. 1e-9 && mono (b :: rest)
        | _ -> true
      in
      mono vals)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "util.rng",
      [
        tc "determinism" test_rng_determinism;
        tc "seed sensitivity" test_rng_seed_sensitivity;
        tc "split independence" test_rng_split_independent;
        tc "copy" test_rng_copy;
        tc "int bounds" test_rng_int_bounds;
        tc "float bounds" test_rng_float_bounds;
        tc "bernoulli extremes" test_rng_bernoulli_extremes;
        tc "bernoulli rate" test_rng_bernoulli_rate;
        tc "bytes length" test_rng_bytes_length;
        tc "exponential positive" test_rng_exponential_positive;
        tc "shuffle permutation" test_rng_shuffle_permutation;
      ] );
    ( "util.hex",
      [
        tc "roundtrip" test_hex_roundtrip;
        tc "known vectors" test_hex_known;
        tc "invalid input" test_hex_invalid;
        QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
      ] );
    ( "util.stats",
      [
        tc "basics" test_stats_basics;
        tc "percentile interpolation" test_stats_percentile_interpolation;
        tc "stddev" test_stats_stddev;
        tc "single sample" test_stats_single;
        tc "empty raises" test_stats_empty_raises;
        tc "unsorted insert" test_stats_unsorted_insert;
        tc "summary" test_stats_summary;
        QCheck_alcotest.to_alcotest qcheck_stats_percentile_monotone;
      ] );
    ( "util.tablefmt",
      [
        tc "shape" test_tablefmt_shape;
        tc "pads short rows" test_tablefmt_pads_short_rows;
      ] );
  ]
