(* Decoder totality: every wire decoder in the repository must return
   [Error] on malformed input — never raise, never loop — because
   byzantine peers control every byte that arrives. *)

let never_raises name decode =
  QCheck.Test.make ~name ~count:1000
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      match decode s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "%s raised %s" name (Printexc.to_string e))

let mutated_roundtrip name encode decode sample =
  (* Flipping any single byte of a valid encoding must still decode
     totally (possibly to Ok of something else — framing catches
     corruption at a lower layer; here we only require totality). *)
  let encoded = encode sample in
  QCheck.Test.make ~name ~count:500
    QCheck.(pair (int_bound (String.length encoded - 1)) (int_bound 255))
    (fun (i, x) ->
      let b = Bytes.of_string encoded in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (x lor 1)));
      match decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "%s raised %s" name (Printexc.to_string e))

let sample_record =
  Blockplane.Record.Recv
    {
      Blockplane.Record.src = 1;
      tdest = 0;
      tcomm_seq = 3;
      log_pos = 9;
      tpayload = "payload";
      proofs = [ ("u1/n1.0", "sig") ];
      geo_proofs = [ (2, [ ("u2/n2.0", "gsig") ]) ];
    }

let sample_proto =
  Blockplane.Proto.Mirror_proof
    { owner = 1; pos = 4; participant = 2; sigs = [ ("u2/n2.1", "s") ] }

let sample_paxos =
  Bp_paxos.Msg.Promise
    {
      ballot = { Bp_paxos.Ballot.round = 3; node = 1 };
      ok = true;
      accepted =
        [ { Bp_paxos.Msg.instance = 0; ballot = Bp_paxos.Ballot.zero; value = "v" } ];
    }

let sample_kv = Bp_storage.Kv.Cas ("key", Some "old", "new")

let suite =
  [
    ( "fuzz.decoders",
      List.map QCheck_alcotest.to_alcotest
        [
          never_raises "record decoder total" Blockplane.Record.decode;
          never_raises "proto decoder total" Blockplane.Proto.decode;
          never_raises "pbft body decoder total" Bp_pbft.Msg.decode_body;
          never_raises "paxos decoder total" Bp_paxos.Msg.decode;
          never_raises "kv op decoder total" Bp_storage.Kv.decode_op;
          never_raises "frame decoder total" (fun s ->
              match Bp_codec.Frame.unseal s with
              | Ok p -> Ok p
              | Error _ -> Error "bad");
          mutated_roundtrip "record survives bit flips" Blockplane.Record.encode
            Blockplane.Record.decode sample_record;
          mutated_roundtrip "proto survives bit flips" Blockplane.Proto.encode
            Blockplane.Proto.decode sample_proto;
          mutated_roundtrip "paxos survives bit flips" Bp_paxos.Msg.encode
            Bp_paxos.Msg.decode sample_paxos;
          mutated_roundtrip "kv op survives bit flips" Bp_storage.Kv.encode_op
            Bp_storage.Kv.decode_op sample_kv;
        ] );
  ]
