test/test_main.ml: Alcotest T_adversarial T_apps T_blockplane T_codec T_crypto T_fuzz T_harness T_net T_paxos T_pbft T_recovery T_scale T_sim T_storage T_two_phase T_util
