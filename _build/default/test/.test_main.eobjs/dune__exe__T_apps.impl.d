test/t_apps.ml: Alcotest Api App Array Bank Blockplane Bp_apps Bp_sim Byz_paxos Counter Deployment Engine Hier_pbft List Network Printf Record Time Topology
