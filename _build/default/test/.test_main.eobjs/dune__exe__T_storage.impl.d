test/t_storage.ml: Alcotest Bp_codec Bp_storage Gen Kv List Log_store Option QCheck QCheck_alcotest String Wal
