test/t_net.ml: Addr Alcotest Bp_net Bp_sim Engine Heartbeat List Network Time Topology Transport
