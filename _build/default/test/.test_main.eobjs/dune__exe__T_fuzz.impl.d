test/t_fuzz.ml: Blockplane Bp_codec Bp_paxos Bp_pbft Bp_storage Bytes Char Gen List Printexc QCheck QCheck_alcotest String
