test/t_crypto.ml: Alcotest Bp_crypto Bp_util Bytes Char Crc32 Gen Hex Hmac Lamport List Merkle Merkle_sig Printf QCheck QCheck_alcotest Rng Sha256 Signer String
