test/t_two_phase.ml: Alcotest Api App Array Blockplane Bp_apps Bp_codec Bp_sim Bp_storage Deployment Engine List Network Printf Record Time Topology Two_phase
