test/t_harness.ml: Alcotest Bp_harness Bp_sim Bp_util Exp_comm Exp_consensus Exp_costs Exp_geo Exp_local Exp_locality Experiments List Printf Report Runner Stdlib String Workload
