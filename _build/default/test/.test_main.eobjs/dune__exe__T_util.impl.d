test/t_util.ml: Alcotest Array Bp_util Bytes Fun Gen Hex List QCheck QCheck_alcotest Rng Stats String Tablefmt
