test/t_pbft.ml: Addr Alcotest Array Bp_crypto Bp_net Bp_pbft Bp_sim Bp_util Client Config Engine Hashtbl Int64 List Msg Network Printf Replica Stdlib String Time Topology
