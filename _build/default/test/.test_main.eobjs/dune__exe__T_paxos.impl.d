test/t_paxos.ml: Addr Alcotest Array Ballot Bp_net Bp_paxos Bp_sim Engine Hashtbl Int64 List Msg Network Printf Replica Time Topology
