test/t_sim.ml: Addr Alcotest Bp_sim Bp_util Engine Fun List Network Option String Time Topology
