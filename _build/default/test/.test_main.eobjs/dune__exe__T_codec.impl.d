test/t_codec.ml: Alcotest Bp_codec Bytes Char Frame Gen List QCheck QCheck_alcotest String Wire
