test/t_scale.ml: Addr Alcotest Api App Array Blockplane Bp_pbft Bp_sim Bp_storage Bp_util Deployment Engine Geo List Network Printf Stdlib Time Topology Unit_node
