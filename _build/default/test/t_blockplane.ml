open Bp_sim
open Blockplane

let ms = Time.of_ms

type world = {
  engine : Engine.t;
  net : Network.t;
  dep : Deployment.t;
}

let make_world ?(fi = 1) ?(fg = 0) ?faults ?(seed = 51L)
    ?(app = fun () -> App.make (module App.Null)) ?(n_participants = 4) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let dep = Deployment.create ~network:net ~n_participants ~fi ~fg ~app () in
  { engine; net; dep }

let run w t = Engine.run ~until:t w.engine

let test_record_codec_roundtrip () =
  let records =
    [
      Record.Commit "state change";
      Record.Comm { Record.dest = 2; comm_seq = 5; payload = "msg" };
      Record.Recv
        {
          Record.src = 1;
          tdest = 0;
          tcomm_seq = 3;
          log_pos = 17;
          tpayload = "payload";
          proofs = [ ("u1/n1.0", "sig") ];
          geo_proofs = [ (2, [ ("u2/n2.0", "gsig") ]) ];
        };
      Record.Mirrored { owner = 0; opos = 9; ovalue = "entry" };
    ]
  in
  List.iter
    (fun r ->
      match Record.decode (Record.encode r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    records

let test_log_commit_roundtrip () =
  let w = make_world () in
  let api = Deployment.api w.dep 0 in
  let committed = ref 0 in
  Api.log_commit api "event-1" ~on_done:(fun () -> incr committed);
  Api.log_commit api "event-2" ~on_done:(fun () -> incr committed);
  run w (Time.of_sec 2.0);
  Alcotest.(check int) "both committed" 2 !committed;
  Alcotest.(check bool) "unit logs agree" true (Deployment.logs_agree w.dep 0);
  Alcotest.(check bool) "app replicas agree" true (Deployment.app_digests_agree w.dep 0);
  (* Both records are readable. *)
  match (Api.read api 0, Api.read api 1) with
  | Some (Record.Commit _), Some (Record.Commit _) -> ()
  | _ -> Alcotest.fail "expected two commit records in the log"

let test_send_receive_end_to_end () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got = ref [] in
  Api.on_receive api1 (fun ~src payload -> got := (src, payload) :: !got);
  Api.send api0 ~dest:1 "hello from C" ~on_done:ignore;
  run w (Time.of_sec 2.0);
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello from C") ] !got;
  Alcotest.(check bool) "destination logs agree" true (Deployment.logs_agree w.dep 1)

let test_send_receive_latency_shape () =
  (* Fig. 6 shape: one-way C->O delivery = half the 19 ms RTT plus two
     local commits and a signature round — roughly 11-15 ms. *)
  let w = make_world () in
  let api0 = Deployment.api w.dep Topology.dc_california in
  let api1 = Deployment.api w.dep Topology.dc_oregon in
  let arrival = ref Time.zero in
  Api.on_receive api1 (fun ~src:_ _ -> arrival := Engine.now w.engine);
  let started = Engine.now w.engine in
  Api.send api0 ~dest:Topology.dc_oregon "timed" ~on_done:ignore;
  run w (Time.of_sec 2.0);
  let one_way = Time.to_ms (Time.diff !arrival started) in
  Alcotest.(check bool)
    (Printf.sprintf "one-way %.2fms in [10, 18]" one_way)
    true
    (one_way >= 10.0 && one_way <= 18.0)

let test_receive_ordering () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got = ref [] in
  Api.on_receive api1 (fun ~src:_ payload -> got := payload :: !got);
  for i = 1 to 10 do
    Api.send api0 ~dest:1 (Printf.sprintf "m%d" i) ~on_done:ignore
  done;
  run w (Time.of_sec 5.0);
  Alcotest.(check (list string)) "in order"
    (List.init 10 (fun i -> Printf.sprintf "m%d" (i + 1)))
    (List.rev !got)

let test_receive_exactly_once_under_faults () =
  let faults = { Network.no_faults with drop = 0.05; duplicate = 0.1 } in
  let w = make_world ~faults ~seed:52L () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got = ref [] in
  Api.on_receive api1 (fun ~src:_ payload -> got := payload :: !got);
  for i = 1 to 8 do
    Api.send api0 ~dest:1 (Printf.sprintf "m%d" i) ~on_done:ignore
  done;
  run w (Time.of_sec 20.0);
  Alcotest.(check (list string)) "exactly once, in order (Lemma 2)"
    (List.init 8 (fun i -> Printf.sprintf "m%d" (i + 1)))
    (List.rev !got)

let test_poll_receive () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api2 = Deployment.api w.dep 2 in
  Api.send api0 ~dest:2 "polled" ~on_done:ignore;
  run w (Time.of_sec 2.0);
  Alcotest.(check (option string)) "poll returns message" (Some "polled")
    (Api.receive api2 ~src:0);
  Alcotest.(check (option string)) "buffer drained" None (Api.receive api2 ~src:0)

let test_bidirectional_traffic () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got0 = ref [] and got1 = ref [] in
  Api.on_receive api0 (fun ~src payload -> got0 := (src, payload) :: !got0);
  Api.on_receive api1 (fun ~src payload ->
      got1 := (src, payload) :: !got1;
      Api.send api1 ~dest:0 ("re:" ^ payload) ~on_done:ignore);
  Api.send api0 ~dest:1 "ping" ~on_done:ignore;
  run w (Time.of_sec 3.0);
  Alcotest.(check (list (pair int string))) "request" [ (0, "ping") ] !got1;
  Alcotest.(check (list (pair int string))) "response" [ (1, "re:ping") ] !got0

let test_all_pairs_traffic () =
  let w = make_world () in
  let received = Array.make 4 0 in
  for p = 0 to 3 do
    Api.on_receive (Deployment.api w.dep p) (fun ~src:_ _ ->
        received.(p) <- received.(p) + 1)
  done;
  for src = 0 to 3 do
    for dst = 0 to 3 do
      if src <> dst then
        Api.send (Deployment.api w.dep src) ~dest:dst "x" ~on_done:ignore
    done
  done;
  run w (Time.of_sec 5.0);
  Array.iteri
    (fun p n -> Alcotest.(check int) (Printf.sprintf "participant %d" p) 3 n)
    received

let test_forged_transmission_rejected () =
  (* A byzantine node at the destination proposes a received record that
     was never actually sent (Algorithm 1's attack: incrementing the
     counter without a message). The verification routine must reject it. *)
  let w = make_world () in
  let api1 = Deployment.api w.dep 1 in
  let forged =
    Record.Recv
      {
        Record.src = 0;
        tdest = 1;
        tcomm_seq = 0;
        log_pos = 0;
        tpayload = "forged!";
        proofs = [];
        geo_proofs = [];
      }
  in
  let rejected = ref false and committed = ref false in
  Api.submit_record api1 forged
    ~on_done:(fun () -> committed := true)
    ~on_rejected:(fun () -> rejected := true);
  run w (Time.of_sec 5.0);
  Alcotest.(check bool) "rejected" true !rejected;
  Alcotest.(check bool) "not committed" false !committed;
  Alcotest.(check int) "nothing received" (-1)
    (Unit_node.last_received (Deployment.node w.dep 1 0) ~src:0)

let test_single_byzantine_signature_insufficient () =
  (* One byzantine source node signs a fabricated transmission; fi+1 = 2
     valid signatures are required, so the destination must reject it. *)
  let w = make_world () in
  let byz = Deployment.node w.dep 0 3 in
  Unit_node.set_byzantine_sign_anything byz true;
  let fake =
    {
      Record.src = 0;
      tdest = 1;
      tcomm_seq = 0;
      log_pos = 0;
      tpayload = "fabricated";
      proofs = [];
      geo_proofs = [];
    }
  in
  let proofs =
    match Unit_node.sign_transmission byz fake with
    | Some pair -> [ pair ]
    | None -> Alcotest.fail "byzantine node should sign anything"
  in
  let fake = { fake with Record.proofs } in
  (* Deliver it straight to a destination node, bypassing honest daemons. *)
  Bp_net.Transport.send (Unit_node.transport byz)
    ~dst:(Deployment.unit_addrs w.dep 1).(0)
    ~tag:(Proto.aux_tag 1)
    (Proto.encode (Proto.Transmit { transmission = fake }));
  run w (Time.of_sec 5.0);
  Alcotest.(check int) "never delivered" (-1)
    (Unit_node.last_received (Deployment.node w.dep 1 0) ~src:0);
  let api1 = Deployment.api w.dep 1 in
  Alcotest.(check (option string)) "no reception" None (Api.receive api1 ~src:0)

let test_app_verification_blocks_commit () =
  (* An app whose verification routine refuses payloads starting with
     "bad": f+1 replicas pre-reject, the API surfaces the rejection, and
     no replica applies the record (Lemma 3). *)
  let module Picky = struct
    type state = string list ref

    let create () = ref []

    let verify _ record =
      match record with
      | Record.Commit payload -> not (String.length payload >= 3 && String.sub payload 0 3 = "bad")
      | _ -> true

    let apply state record =
      match record with
      | Record.Commit payload -> state := payload :: !state
      | _ -> ()

    let digest state = Bp_crypto.Sha256.digest (String.concat ";" !state)
    let describe state = String.concat ";" !state
  end in
  let w = make_world ~app:(fun () -> App.make (module Picky)) () in
  let api = Deployment.api w.dep 0 in
  let ok = ref false and rejected = ref false and bad_done = ref false in
  Api.log_commit api "good-event" ~on_done:(fun () -> ok := true);
  Api.log_commit api "bad-event"
    ~on_rejected:(fun () -> rejected := true)
    ~on_done:(fun () -> bad_done := true);
  run w (Time.of_sec 5.0);
  Alcotest.(check bool) "good committed" true !ok;
  Alcotest.(check bool) "bad rejected" true !rejected;
  Alcotest.(check bool) "bad never committed" false !bad_done;
  Alcotest.(check bool) "replicas agree" true (Deployment.app_digests_agree w.dep 0)

let test_malicious_daemon_reserve_promotion () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api3 = Deployment.api w.dep 3 in
  (* The active daemon 0->3 goes silent (maliciously delaying messages). *)
  Comm_daemon.set_enabled (Deployment.daemon w.dep ~src:0 ~dest:3) false;
  let got = ref [] in
  Api.on_receive api3 (fun ~src:_ payload -> got := payload :: !got);
  Api.send api0 ~dest:3 "delayed" ~on_done:ignore;
  (* Reserves probe every 500 ms and need 3 consecutive gap sightings. *)
  run w (Time.of_sec 15.0);
  Alcotest.(check (list string)) "reserve delivered it" [ "delayed" ] !got;
  let reserves = Deployment.reserves w.dep ~src:0 ~dest:3 in
  Alcotest.(check bool) "some reserve promoted" true
    (List.exists Reserve.promoted reserves)

let test_no_spurious_promotion () =
  let w = make_world () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  Api.on_receive api1 (fun ~src:_ _ -> ());
  for i = 1 to 5 do
    Api.send api0 ~dest:1 (string_of_int i) ~on_done:ignore
  done;
  run w (Time.of_sec 10.0);
  let reserves = Deployment.reserves w.dep ~src:0 ~dest:1 in
  Alcotest.(check bool) "healthy daemon, no promotion" false
    (List.exists Reserve.promoted reserves)

let test_read_strategies () =
  let w = make_world () in
  let api = Deployment.api w.dep 0 in
  let done_ = ref false in
  Api.log_commit api "readable" ~on_done:(fun () -> done_ := true);
  run w (Time.of_sec 1.0);
  Alcotest.(check bool) "committed" true !done_;
  (* read-1 returns the entry. *)
  (match Api.read api 0 with
  | Some (Record.Commit "readable") -> ()
  | _ -> Alcotest.fail "read-1 failed");
  (* A byzantine lead node rewrites its local copy: read-1 now lies, but
     the 2f+1 quorum read returns the truth. *)
  Bp_storage.Log_store.tamper (Unit_node.log (Deployment.node w.dep 0 0)) 0
    (Record.encode (Record.Commit "LIE"));
  (match Api.read api 0 with
  | Some (Record.Commit "LIE") -> ()
  | _ -> Alcotest.fail "tamper should affect read-1");
  let quorum_result = ref None in
  Api.read_quorum api 0 ~on_result:(fun r -> quorum_result := r);
  run w (Time.of_sec 2.0);
  (match !quorum_result with
  | Some (Record.Commit "readable") -> ()
  | _ -> Alcotest.fail "quorum read failed to mask the liar");
  (* Linearizable read commits a marker first. *)
  let lin_result = ref None in
  Api.read_linearizable api 0 ~on_result:(fun r -> lin_result := r);
  run w (Time.of_sec 4.0);
  match !lin_result with
  | Some (Record.Commit "readable") -> ()
  | _ -> Alcotest.fail "linearizable read failed"

let test_geo_commit_latency () =
  (* Fig. 5 shape: with fg=1, committing at California costs local commit
     plus the 19 ms RTT to Oregon plus the mirror's local commit:
     ~21-26 ms. *)
  let w = make_world ~fg:1 () in
  let api = Deployment.api w.dep Topology.dc_california in
  let finished = ref Time.zero in
  let started = Engine.now w.engine in
  Api.log_commit api "geo" ~on_done:(fun () -> finished := Engine.now w.engine);
  run w (Time.of_sec 3.0);
  let lat = Time.to_ms (Time.diff !finished started) in
  Alcotest.(check bool)
    (Printf.sprintf "fg=1 latency %.1fms in [20, 30]" lat)
    true
    (lat >= 20.0 && lat <= 30.0);
  Alcotest.(check bool) "entry proved" true
    (Geo.is_proved (Deployment.geo w.dep Topology.dc_california) ~pos:0)

let test_geo_failover_reroutes () =
  (* Fig. 8(a) shape: the closest mirror (Oregon) dies; California's geo
     commits must reroute to the next mirror (Virginia) and keep going,
     at higher latency. *)
  let w = make_world ~fg:1 () in
  let api = Deployment.api w.dep Topology.dc_california in
  let lat = ref [] in
  let commit_one () =
    let s = Engine.now w.engine in
    Api.log_commit api "x" ~on_done:(fun () ->
        lat := Time.to_ms (Time.diff (Engine.now w.engine) s) :: !lat)
  in
  commit_one ();
  run w (Time.of_sec 1.0);
  Network.crash_dc w.net Topology.dc_oregon;
  run w (Time.of_sec 3.0);
  commit_one ();
  run w (Time.of_sec 8.0);
  match List.rev !lat with
  | [ before; after ] ->
      Alcotest.(check bool)
        (Printf.sprintf "before %.1fms ~20-30" before)
        true
        (before >= 20.0 && before <= 30.0);
      Alcotest.(check bool)
        (Printf.sprintf "after %.1fms >= 60 (Virginia)" after)
        true
        (after >= 60.0 && after <= 90.0)
  | l -> Alcotest.failf "expected 2 commits, got %d" (List.length l)

let test_geo_send_carries_proofs () =
  let w = make_world ~fg:1 () in
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got = ref [] in
  Api.on_receive api1 (fun ~src:_ payload -> got := payload :: !got);
  Api.send api0 ~dest:1 "geo message" ~on_done:ignore;
  run w (Time.of_sec 5.0);
  Alcotest.(check (list string)) "delivered with geo proofs" [ "geo message" ] !got;
  (* The received record in participant 1's log carries the fg bundles. *)
  let log1 = Unit_node.log (Deployment.node w.dep 1 0) in
  let found = ref false in
  Bp_storage.Log_store.iter_from log1 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Recv tr) ->
          if List.length tr.Record.geo_proofs >= 1 then found := true
      | _ -> ());
  Alcotest.(check bool) "geo proofs present in log" true !found

let test_lemma1_agreement_under_byzantine_node () =
  (* One byzantine node per unit (silent in commit phase) must not
     prevent progress or agreement. *)
  let w = make_world () in
  for p = 0 to 3 do
    Bp_pbft.Replica.suppress_commit_votes
      (Unit_node.replica (Deployment.node w.dep p 3))
      true
  done;
  let api0 = Deployment.api w.dep 0 in
  let api1 = Deployment.api w.dep 1 in
  let got = ref 0 in
  Api.on_receive api1 (fun ~src:_ _ -> incr got);
  let committed = ref 0 in
  for _ = 1 to 3 do
    Api.log_commit api0 "c" ~on_done:(fun () -> incr committed);
    Api.send api0 ~dest:1 "m" ~on_done:ignore
  done;
  run w (Time.of_sec 10.0);
  Alcotest.(check int) "commits proceed" 3 !committed;
  Alcotest.(check int) "messages delivered" 3 !got;
  Alcotest.(check bool) "source unit agreement" true (Deployment.logs_agree w.dep 0);
  Alcotest.(check bool) "destination unit agreement" true (Deployment.logs_agree w.dep 1)

(* Randomized whole-system property: arbitrary interleaved commit/send
   workloads across all participants, under mild network faults and one
   silent byzantine node per unit, must always end with (a) every send
   delivered exactly once in per-pair order, (b) all units' logs in
   agreement, (c) all app replicas in agreement. *)
let test_randomized_workload_property () =
  for seed = 1 to 6 do
    let faults = { Network.no_faults with drop = 0.03; duplicate = 0.05 } in
    let w = make_world ~faults ~seed:(Int64.of_int (9000 + seed)) () in
    let rng = Bp_util.Rng.create (Int64.of_int (100 + seed)) in
    (* One quiet byzantine replica per unit. *)
    for p = 0 to 3 do
      Bp_pbft.Replica.suppress_commit_votes
        (Unit_node.replica (Deployment.node w.dep p 3))
        true
    done;
    let expected = Array.make_matrix 4 4 [] in
    let received = Array.make_matrix 4 4 [] in
    (* One receive handler per destination, bucketing by source. *)
    for dst = 0 to 3 do
      Api.on_receive (Deployment.api w.dep dst) (fun ~src payload ->
          received.(src).(dst) <- payload :: received.(src).(dst))
    done;
    let op_count = 25 in
    for i = 1 to op_count do
      let src = Bp_util.Rng.int rng 4 in
      if Bp_util.Rng.bool rng then
        Api.log_commit (Deployment.api w.dep src)
          (Printf.sprintf "c-%d-%d" src i)
          ~on_done:ignore
      else begin
        let dst = (src + 1 + Bp_util.Rng.int rng 3) mod 4 in
        let payload = Printf.sprintf "m-%d-%d-%d" src dst i in
        expected.(src).(dst) <- payload :: expected.(src).(dst);
        Api.send (Deployment.api w.dep src) ~dest:dst payload ~on_done:ignore
      end
    done;
    run w (Time.of_sec 60.0);
    for src = 0 to 3 do
      for dst = 0 to 3 do
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: %d->%d exactly once in order" seed src dst)
          (List.rev expected.(src).(dst))
          (List.rev received.(src).(dst))
      done
    done;
    for p = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: unit %d log agreement" seed p)
        true
        (Deployment.logs_agree w.dep p);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: unit %d app agreement" seed p)
        true
        (Deployment.app_digests_agree w.dep p)
    done
  done

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "blockplane.record",
      [ tc "codec roundtrip" test_record_codec_roundtrip ] );
    ( "blockplane.commit",
      [
        tc "log-commit roundtrip" test_log_commit_roundtrip;
        tc "app verification blocks commit" test_app_verification_blocks_commit;
        tc "read strategies" test_read_strategies;
      ] );
    ( "blockplane.comm",
      [
        tc "send/receive end to end" test_send_receive_end_to_end;
        tc "latency shape (fig6)" test_send_receive_latency_shape;
        tc "receive ordering" test_receive_ordering;
        tc "exactly-once under faults (Lemma 2)" test_receive_exactly_once_under_faults;
        tc "poll receive" test_poll_receive;
        tc "bidirectional" test_bidirectional_traffic;
        tc "all pairs" test_all_pairs_traffic;
      ] );
    ( "blockplane.byzantine",
      [
        tc "forged transmission rejected" test_forged_transmission_rejected;
        tc "one byzantine signature insufficient" test_single_byzantine_signature_insufficient;
        tc "malicious daemon -> reserve promotes" test_malicious_daemon_reserve_promotion;
        tc "healthy daemon -> no promotion" test_no_spurious_promotion;
        tc "agreement with byzantine nodes (Lemma 1)" test_lemma1_agreement_under_byzantine_node;
        tc "randomized workload property" test_randomized_workload_property;
      ] );
    ( "blockplane.geo",
      [
        tc "fg=1 commit latency (fig5)" test_geo_commit_latency;
        tc "mirror failover (fig8a shape)" test_geo_failover_reroutes;
        tc "transmissions carry geo proofs" test_geo_send_carries_proofs;
      ] );
  ]
