open Bp_sim
open Blockplane
open Bp_apps

let make_world ?(fi = 1) ?(fg = 0) ?faults ?(seed = 61L) ~app () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let dep = Deployment.create ~network:net ~n_participants:4 ~fi ~fg ~app () in
  (engine, net, dep)

(* ---------- counter (Algorithm 1) ---------- *)

let counter_app () = App.make (module Counter.Protocol)

let test_counter_end_to_end () =
  let engine, _net, dep = make_world ~app:counter_app () in
  let a = Counter.attach (Deployment.api dep 0) in
  let _b = Counter.attach (Deployment.api dep 1) in
  let done_ = ref 0 in
  Counter.user_request a ~dest:1 ~on_done:(fun () -> incr done_);
  Counter.user_request a ~dest:1 ~on_done:(fun () -> incr done_);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check int) "both requests sent" 2 !done_;
  (* Every node of participant 1 counts 2. *)
  Array.iter
    (fun node -> Alcotest.(check int) "counter" 2 (Counter.value node))
    (Deployment.nodes_of dep 1);
  Alcotest.(check bool) "unit 1 replicas agree" true (Deployment.app_digests_agree dep 1);
  (* Participant 0 never incremented its own counter. *)
  Alcotest.(check int) "source counter untouched" 0
    (Counter.value (Deployment.node dep 0 0))

let test_counter_byzantine_increment_rejected () =
  (* §III-C's attack: a malicious node proposes increment-counter without
     having received a message. The verification routine rejects it. *)
  let engine, _net, dep = make_world ~app:counter_app () in
  let _b = Counter.attach (Deployment.api dep 1) in
  let rejected = ref false and committed = ref false in
  Api.submit_record (Deployment.api dep 1) (Record.Commit "increment-counter")
    ~on_done:(fun () -> committed := true)
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "rejected" true !rejected;
  Alcotest.(check bool) "never committed" false !committed;
  Alcotest.(check int) "counter still zero" 0 (Counter.value (Deployment.node dep 1 0))

let test_counter_forged_send_rejected () =
  (* A send with no matching committed user request must be rejected. *)
  let engine, _net, dep = make_world ~app:counter_app () in
  let api0 = Deployment.api dep 0 in
  let rejected = ref false in
  Api.submit_record api0
    (Record.Comm { Record.dest = 1; comm_seq = 0; payload = "count:99" })
    ~on_done:ignore
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "forged send rejected" true !rejected

(* ---------- byzantized paxos (Algorithm 3) ---------- *)

let paxos_app () = App.make (module Byz_paxos.Protocol)

let make_paxos_world ?seed () =
  let engine, net, dep = make_world ?seed ~app:paxos_app () in
  let drivers = Array.init 4 (fun p -> Byz_paxos.attach (Deployment.api dep p) ~n_participants:4) in
  (engine, net, dep, drivers)

let test_byz_paxos_election_and_replication () =
  let engine, _net, dep, drivers = make_paxos_world () in
  let elected = ref false and committed = ref false in
  Byz_paxos.elect drivers.(2) ~on_elected:(fun ok ->
      elected := ok;
      if ok then
        Byz_paxos.replicate drivers.(2) "the-value" ~on_result:(fun ok ->
            committed := ok));
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "elected" true !elected;
  Alcotest.(check bool) "leader flag" true (Byz_paxos.is_leader drivers.(2));
  Alcotest.(check bool) "replicated" true !committed;
  Alcotest.(check (list (pair int string))) "decided" [ (0, "the-value") ]
    (Byz_paxos.decided drivers.(2));
  (* All four units' protocol replicas stayed consistent. *)
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "unit %d agreement" p)
      true
      (Deployment.app_digests_agree dep p)
  done

let test_byz_paxos_replication_latency_fig7 () =
  (* Fig. 7 shape: Blockplane-Paxos replication from Virginia should cost
     about the 70 ms majority RTT plus local-commitment overhead
     (paper: within 10-13%% of paxos for V). *)
  let engine, _net, _dep, drivers = make_paxos_world () in
  let v = Topology.dc_virginia in
  let lat = ref None in
  Byz_paxos.elect drivers.(v) ~on_elected:(fun ok ->
      if ok then begin
        let started = Engine.now engine in
        Byz_paxos.replicate drivers.(v) "timed" ~on_result:(fun _ ->
            lat := Some (Time.to_ms (Time.diff (Engine.now engine) started)))
      end);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  match !lat with
  | None -> Alcotest.fail "replication did not finish"
  | Some ms ->
      Alcotest.(check bool)
        (Printf.sprintf "V replication %.1fms in [70, 90]" ms)
        true
        (ms >= 70.0 && ms <= 90.0)

let test_byz_paxos_non_leader_cannot_replicate () =
  let engine, _net, _dep, drivers = make_paxos_world () in
  let result = ref None in
  Byz_paxos.replicate drivers.(0) "nope" ~on_result:(fun ok -> result := Some ok);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check (option bool)) "refused" (Some false) !result

let test_byz_paxos_forged_message_rejected () =
  (* A byzantine node tries to emit a paxos-prepare the protocol never
     committed an event for: the send-verification routine rejects it. *)
  let engine, _net, dep, _drivers = make_paxos_world () in
  let api0 = Deployment.api dep 0 in
  let forged_payload =
    (* a syntactically valid paxos message *)
    Record.Comm { Record.dest = 1; comm_seq = 0; payload = "\x00\x01\x00" }
  in
  let rejected = ref false in
  Api.submit_record api0 forged_payload ~on_done:ignore
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "forged paxos message rejected" true !rejected

let test_byz_paxos_two_leaders_last_wins () =
  let engine, _net, _dep, drivers = make_paxos_world ~seed:62L () in
  let first = ref false in
  Byz_paxos.elect drivers.(0) ~on_elected:(fun ok -> first := ok);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "first elected" true !first;
  (* A second, later election with a higher ballot deposes the first. *)
  let second = ref false in
  Byz_paxos.elect drivers.(1) ~on_elected:(fun ok -> second := ok);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "second elected" true !second;
  (* The deposed leader's replication now fails. *)
  let result = ref None in
  Byz_paxos.replicate drivers.(0) "stale" ~on_result:(fun ok -> result := Some ok);
  Engine.run ~until:(Time.of_sec 15.0) engine;
  Alcotest.(check (option bool)) "stale leader loses" (Some false) !result

(* ---------- hierarchical PBFT baseline ---------- *)

let test_hier_pbft_replication () =
  let engine = Engine.create ~seed:63L () in
  let net = Network.create engine Topology.aws_paper () in
  let h = Hier_pbft.create ~network:net ~n_participants:4 () in
  let lat = ref None in
  let started = Engine.now engine in
  Hier_pbft.replicate h ~leader:Topology.dc_virginia "v" ~on_committed:(fun () ->
      lat := Some (Time.to_ms (Time.diff (Engine.now engine) started)));
  Engine.run ~until:(Time.of_sec 5.0) engine;
  (match !lat with
  | None -> Alcotest.fail "no commit"
  | Some ms ->
      (* Between plain paxos (70) and Blockplane-paxos (~78) for V. *)
      Alcotest.(check bool)
        (Printf.sprintf "V hier latency %.1fms in [70, 85]" ms)
        true
        (ms >= 70.0 && ms <= 85.0));
  Alcotest.(check int) "decided" 1 (Hier_pbft.decided_count h Topology.dc_virginia)

(* ---------- bank ---------- *)

let bank_app () = App.make (module Bank.Ledger)

let test_bank_local_operations () =
  let engine, _net, dep = make_world ~app:bank_app () in
  let b = Bank.attach (Deployment.api dep 0) in
  let steps = ref [] in
  Bank.open_account b "alice" 100 ~on_done:(fun () ->
      steps := "open" :: !steps;
      Bank.deposit b "alice" 50 ~on_done:(fun () ->
          steps := "deposit" :: !steps;
          Bank.withdraw b "alice" 30 ~on_done:(fun () -> steps := "withdraw" :: !steps)));
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check (list string)) "all steps" [ "open"; "deposit"; "withdraw" ]
    (List.rev !steps);
  Array.iter
    (fun node ->
      Alcotest.(check (option int)) "balance replicated" (Some 120)
        (Bank.balance node "alice"))
    (Deployment.nodes_of dep 0)

let test_bank_overdraft_rejected () =
  let engine, _net, dep = make_world ~app:bank_app () in
  let b = Bank.attach (Deployment.api dep 0) in
  let rejected = ref false and done_ = ref false in
  Bank.open_account b "bob" 10 ~on_done:(fun () ->
      Bank.withdraw b "bob" 1000
        ~on_rejected:(fun () -> rejected := true)
        ~on_done:(fun () -> done_ := true));
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "overdraft rejected" true !rejected;
  Alcotest.(check bool) "never applied" false !done_;
  Alcotest.(check (option int)) "balance intact" (Some 10)
    (Bank.balance (Deployment.node dep 0 0) "bob")

let test_bank_cross_dc_transfer () =
  let engine, _net, dep = make_world ~app:bank_app () in
  let b0 = Bank.attach (Deployment.api dep 0) in
  let _b1 = Bank.attach (Deployment.api dep 1) in
  Bank.open_account b0 "alice" 100 ~on_done:(fun () ->
      Bank.transfer b0 ~from_account:"alice" ~dest:1 ~to_account:"carol" 40
        ~on_done:ignore);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check (option int)) "debited" (Some 60)
    (Bank.balance (Deployment.node dep 0 0) "alice");
  Alcotest.(check (option int)) "credited" (Some 40)
    (Bank.balance (Deployment.node dep 1 0) "carol");
  Alcotest.(check bool) "both units agree" true
    (Deployment.app_digests_agree dep 0 && Deployment.app_digests_agree dep 1)

let test_bank_byzantine_credit_rejected () =
  (* Minting money: a byzantine replica proposes a credit with no
     received transfer behind it. *)
  let engine, _net, dep = make_world ~app:bank_app () in
  let _b1 = Bank.attach (Deployment.api dep 1) in
  let rejected = ref false in
  Api.submit_record (Deployment.api dep 1)
    (Record.Commit (Bank.encode_op (Bank.Credit_from_transfer ("mallory", 1_000_000))))
    ~on_done:ignore
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "credit without transfer rejected" true !rejected;
  Alcotest.(check (option int)) "no money minted" None
    (Bank.balance (Deployment.node dep 1 0) "mallory")

let test_bank_conservation_under_traffic () =
  let engine, _net, dep = make_world ~app:bank_app ~seed:64L () in
  let banks = Array.init 4 (fun p -> Bank.attach (Deployment.api dep p)) in
  let opened = ref 0 in
  Array.iteri
    (fun p b ->
      Bank.open_account b (Printf.sprintf "acct%d" p) 1000 ~on_done:(fun () -> incr opened))
    banks;
  Engine.run ~until:(Time.of_sec 3.0) engine;
  Alcotest.(check int) "all opened" 4 !opened;
  (* A ring of transfers. *)
  Array.iteri
    (fun p b ->
      let dest = (p + 1) mod 4 in
      Bank.transfer b
        ~from_account:(Printf.sprintf "acct%d" p)
        ~dest
        ~to_account:(Printf.sprintf "acct%d" dest)
        (100 + p) ~on_done:ignore)
    banks;
  Engine.run ~until:(Time.of_sec 15.0) engine;
  (* Total money is conserved across the four ledgers. *)
  let total = ref 0 in
  for p = 0 to 3 do
    match Bank.balance (Deployment.node dep p 0) (Printf.sprintf "acct%d" p) with
    | Some b -> total := !total + b
    | None -> Alcotest.fail "missing account"
  done;
  Alcotest.(check int) "conservation" 4000 !total

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "apps.counter",
      [
        tc "end to end (Algorithm 1)" test_counter_end_to_end;
        tc "byzantine increment rejected" test_counter_byzantine_increment_rejected;
        tc "forged send rejected" test_counter_forged_send_rejected;
      ] );
    ( "apps.byz_paxos",
      [
        tc "election + replication" test_byz_paxos_election_and_replication;
        tc "replication latency (fig7 shape)" test_byz_paxos_replication_latency_fig7;
        tc "non-leader cannot replicate" test_byz_paxos_non_leader_cannot_replicate;
        tc "forged paxos message rejected" test_byz_paxos_forged_message_rejected;
        tc "two leaders, last wins" test_byz_paxos_two_leaders_last_wins;
      ] );
    ( "apps.hier_pbft",
      [ tc "replication latency between baselines" test_hier_pbft_replication ] );
    ( "apps.bank",
      [
        tc "local operations" test_bank_local_operations;
        tc "overdraft rejected" test_bank_overdraft_rejected;
        tc "cross-dc transfer" test_bank_cross_dc_transfer;
        tc "byzantine credit rejected" test_bank_byzantine_credit_rejected;
        tc "conservation under traffic" test_bank_conservation_under_traffic;
      ] );
  ]
