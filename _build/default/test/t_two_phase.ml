open Bp_sim
open Blockplane
open Bp_apps

let make_world ?(seed = 101L) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module Two_phase.Protocol))
      ()
  in
  let coord = Two_phase.attach_coordinator (Deployment.api dep 0) in
  for p = 1 to 3 do
    Two_phase.attach_cohort (Deployment.api dep p)
  done;
  (engine, net, dep, coord)

let test_commit_path () =
  let engine, _net, dep, coord = make_world () in
  let outcome = ref None in
  Two_phase.submit coord
    ~ops:
      [
        (1, Bp_storage.Kv.Put ("x", "1"));
        (2, Bp_storage.Kv.Put ("y", "2"));
        (3, Bp_storage.Kv.Put ("z", "3"));
      ]
    ~on_decided:(fun o -> outcome := Some o);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "committed" true (!outcome = Some Two_phase.Committed);
  (* Every cohort applied its operation, on all of its replicas. *)
  List.iter
    (fun (p, key, v) ->
      Array.iter
        (fun node ->
          Alcotest.(check (option string))
            (Printf.sprintf "partition %d" p)
            (Some v)
            (Two_phase.partition_get node key))
        (Deployment.nodes_of dep p))
    [ (1, "x", "1"); (2, "y", "2"); (3, "z", "3") ];
  Alcotest.(check (pair int int)) "counts" (1, 0) (Two_phase.decided_count coord)

let test_abort_path_atomicity () =
  (* One cohort's operation cannot apply (delete of a missing key): it
     votes NO, the transaction aborts, and *no* cohort applies anything —
     atomicity. *)
  let engine, _net, dep, coord = make_world ~seed:102L () in
  let outcome = ref None in
  Two_phase.submit coord
    ~ops:
      [
        (1, Bp_storage.Kv.Put ("a", "1"));
        (2, Bp_storage.Kv.Delete "missing-key");
      ]
    ~on_decided:(fun o -> outcome := Some o);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "aborted" true (!outcome = Some Two_phase.Aborted);
  Alcotest.(check (option string)) "cohort 1 did not apply" None
    (Two_phase.partition_get (Deployment.node dep 1 0) "a");
  Alcotest.(check (pair int int)) "counts" (0, 1) (Two_phase.decided_count coord)

let test_sequential_transactions () =
  let engine, _net, dep, coord = make_world ~seed:103L () in
  let outcomes = ref [] in
  let rec go i =
    if i <= 3 then
      Two_phase.submit coord
        ~ops:[ (1, Bp_storage.Kv.Add ("ctr", 10)); (2, Bp_storage.Kv.Add ("ctr", 1)) ]
        ~on_decided:(fun o ->
          outcomes := o :: !outcomes;
          go (i + 1))
  in
  go 1;
  Engine.run ~until:(Time.of_sec 20.0) engine;
  Alcotest.(check int) "three decided" 3 (List.length !outcomes);
  Alcotest.(check bool) "all committed" true
    (List.for_all (fun o -> o = Two_phase.Committed) !outcomes);
  Alcotest.(check (option string)) "partition 1 accumulated" (Some "30")
    (Two_phase.partition_get (Deployment.node dep 1 0) "ctr");
  Alcotest.(check (option string)) "partition 2 accumulated" (Some "3")
    (Two_phase.partition_get (Deployment.node dep 2 0) "ctr")

let test_byzantine_commit_decision_rejected () =
  (* The core 2PC safety property under byzantine nodes: a COMMIT decision
     without all YES votes received cannot pass verification. *)
  let engine, _net, dep, _coord = make_world ~seed:104L () in
  (* No transaction ran; forge a decide-commit for a fabricated tid. *)
  let rejected = ref false in
  let forged_decide = ref false in
  Api.submit_record (Deployment.api dep 0)
    (Record.Commit
       (Bp_codec.Wire.encode (fun e ->
            Bp_codec.Wire.u8 e 1;
            Bp_codec.Wire.string e "t0.999";
            Bp_codec.Wire.bool e true)))
    ~on_done:(fun () -> forged_decide := true)
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 5.0) engine;
  Alcotest.(check bool) "forged decide rejected" true !rejected;
  Alcotest.(check bool) "never committed" false !forged_decide

let test_byzantine_premature_commit_rejected () =
  (* Run a transaction that a cohort will refuse, and race a byzantine
     COMMIT decision against the honest ABORT: the verification routines
     must reject the COMMIT because no complete YES vote set exists. *)
  let engine, _net, dep, coord = make_world ~seed:105L () in
  let outcome = ref None in
  Two_phase.submit coord
    ~ops:[ (1, Bp_storage.Kv.Delete "nope") ]
    ~on_decided:(fun o -> outcome := Some o);
  (* While votes are in flight, a byzantine replica proposes COMMIT. *)
  let commit_accepted = ref false in
  ignore
    (Engine.schedule engine ~after:(Time.of_ms 5.0) (fun () ->
         Api.submit_record (Deployment.api dep 0)
           (Record.Commit
              (Bp_codec.Wire.encode (fun e ->
                   Bp_codec.Wire.u8 e 1;
                   Bp_codec.Wire.string e "t0.0";
                   Bp_codec.Wire.bool e true)))
           ~on_done:(fun () -> commit_accepted := true)
           ~on_rejected:ignore));
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "honest outcome is abort" true
    (!outcome = Some Two_phase.Aborted);
  Alcotest.(check bool) "byzantine COMMIT rejected" false !commit_accepted;
  (* Nothing was applied anywhere. *)
  Alcotest.(check (option string)) "no phantom apply" None
    (Two_phase.partition_get (Deployment.node dep 1 0) "nope")

let test_replica_agreement_after_transactions () =
  let engine, _net, dep, coord = make_world ~seed:106L () in
  let done_ = ref false in
  Two_phase.submit coord
    ~ops:[ (1, Bp_storage.Kv.Put ("k", "v")); (3, Bp_storage.Kv.Put ("k", "w")) ]
    ~on_decided:(fun _ -> done_ := true);
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "decided" true !done_;
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "unit %d agreement" p)
      true
      (Deployment.app_digests_agree dep p && Deployment.logs_agree dep p)
  done

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "apps.two_phase",
      [
        tc "commit path" test_commit_path;
        tc "abort preserves atomicity" test_abort_path_atomicity;
        tc "sequential transactions" test_sequential_transactions;
        tc "byzantine decide without votes rejected" test_byzantine_commit_decision_rejected;
        tc "byzantine premature COMMIT rejected" test_byzantine_premature_commit_rejected;
        tc "replica agreement" test_replica_agreement_after_transactions;
      ] );
  ]
