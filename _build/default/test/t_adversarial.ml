open Bp_sim
open Blockplane

let make_world ?(fi = 1) ?(fg = 0) ?scheme ?(seed = 81L)
    ?(app = fun () -> App.make (module App.Null)) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi ~fg ?scheme ~app ()
  in
  (engine, net, dep)

let test_altered_payload_rejected () =
  (* A byzantine relay swaps the payload of a correctly signed
     transmission record; the signatures cover the payload digest, so the
     destination must reject it. *)
  let engine, _net, dep = make_world () in
  let api0 = Deployment.api dep 0 in
  Api.send api0 ~dest:1 "authentic" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 2.0) engine;
  (* Capture the signed record, then tamper with the payload. *)
  let log1 = Unit_node.log (Deployment.node dep 1 0) in
  let captured = ref None in
  Bp_storage.Log_store.iter_from log1 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Recv tr) -> captured := Some tr
      | _ -> ());
  let tr = Option.get !captured in
  let forged =
    { tr with Record.tpayload = "tampered!"; tcomm_seq = tr.Record.tcomm_seq + 1 }
  in
  let attacker = Deployment.node dep 0 3 in
  Bp_net.Transport.send (Unit_node.transport attacker)
    ~dst:(Deployment.unit_addrs dep 1).(0)
    ~tag:(Proto.aux_tag 1)
    (Proto.encode (Proto.Transmit { transmission = forged }));
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Alcotest.(check int) "tampered copy never accepted" 0
    (Unit_node.last_received (Deployment.node dep 1 0) ~src:0);
  Alcotest.(check (option string)) "only the authentic message" (Some "authentic")
    (Api.receive (Deployment.api dep 1) ~src:0)

let test_garbage_resilience_real () =
  let engine, net, dep = make_world ~seed:82L () in
  let rng = Bp_util.Rng.create 83L in
  let attacker = Bp_net.Transport.create net (Addr.make ~dc:0 ~idx:99) in
  let tags =
    [ "u0"; "u0.reply"; "u0.aux"; "u1"; "u1.aux"; "paxos"; "nonsense" ]
  in
  for _ = 1 to 200 do
    let tag = List.nth tags (Bp_util.Rng.int rng (List.length tags)) in
    let dst =
      Addr.make ~dc:(Bp_util.Rng.int rng 4) ~idx:(Bp_util.Rng.int rng 4)
    in
    Bp_net.Transport.send attacker ~dst ~tag
      (Bytes.to_string (Bp_util.Rng.bytes rng (Bp_util.Rng.int rng 200)))
  done;
  Engine.run ~until:(Time.of_sec 2.0) engine;
  (* The system still works afterwards. *)
  let ok = ref false in
  Api.log_commit (Deployment.api dep 0) "still-alive" ~on_done:(fun () -> ok := true);
  let got = ref None in
  Api.on_receive (Deployment.api dep 1) (fun ~src:_ p -> got := Some p);
  Api.send (Deployment.api dep 0) ~dest:1 "post-fuzz" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Alcotest.(check bool) "commit works after fuzzing" true !ok;
  Alcotest.(check (option string)) "send works after fuzzing" (Some "post-fuzz") !got;
  Alcotest.(check bool) "unit agreement" true (Deployment.logs_agree dep 0)

let test_hash_based_scheme_end_to_end () =
  (* The whole middleware with real asymmetric (Lamport/Merkle)
     signatures instead of the HMAC registry. *)
  let engine, _net, dep = make_world ~scheme:`Hash_based ~seed:84L () in
  let api0 = Deployment.api dep 0 in
  let got = ref None in
  Api.on_receive (Deployment.api dep 1) (fun ~src:_ p -> got := Some p);
  let committed = ref false in
  Api.log_commit api0 "hash-based-commit" ~on_done:(fun () -> committed := true);
  Api.send api0 ~dest:1 "hash-based-message" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check bool) "commit" true !committed;
  Alcotest.(check (option string)) "delivery" (Some "hash-based-message") !got

let test_parallel_sends_to_different_destinations () =
  (* Communication daemons are independent per destination: a slow pair
     (C-I) must not delay a fast pair (C-O). *)
  let engine, _net, dep = make_world ~seed:85L () in
  let api0 = Deployment.api dep 0 in
  let arrival_o = ref Time.zero and arrival_i = ref Time.zero in
  Api.on_receive (Deployment.api dep Topology.dc_oregon) (fun ~src:_ _ ->
      arrival_o := Engine.now engine);
  Api.on_receive (Deployment.api dep Topology.dc_ireland) (fun ~src:_ _ ->
      arrival_i := Engine.now engine);
  Api.send api0 ~dest:Topology.dc_ireland "slow-pair" ~on_done:ignore;
  Api.send api0 ~dest:Topology.dc_oregon "fast-pair" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 2.0) engine;
  let o = Time.to_ms !arrival_o and i = Time.to_ms !arrival_i in
  Alcotest.(check bool)
    (Printf.sprintf "Oregon %.1fms long before Ireland %.1fms" o i)
    true
    (o < 20.0 && i > 60.0)

let test_pbft_watermark_progression () =
  (* Sequences far beyond the initial watermark window: checkpoints must
     keep the window sliding and commits flowing. *)
  let engine = Engine.create ~seed:86L () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let cfg =
    Bp_pbft.Config.make ~nodes:addrs ~keystore ~checkpoint_interval:8
      ~watermark_window:24 ~batch_max:1 ()
  in
  let replicas =
    Array.init 4 (fun i ->
        Bp_pbft.Replica.create (Bp_net.Transport.create net addrs.(i)) cfg ~id:i
          ~execute:(fun ~seq:_ _ -> "ok")
          ())
  in
  let client =
    Bp_pbft.Client.create (Bp_net.Transport.create net (Addr.make ~dc:0 ~idx:100)) cfg
  in
  let served = ref 0 in
  let rec go i =
    if i <= 100 then
      Bp_pbft.Client.submit client (Printf.sprintf "op%d" i) ~on_result:(fun _ ->
          incr served;
          go (i + 1))
  in
  go 1;
  Engine.run ~until:(Time.of_sec 30.0) engine;
  Alcotest.(check int) "100 ops through a 24-wide window" 100 !served;
  Array.iter
    (fun r ->
      Alcotest.(check bool) "watermark advanced far" true
        (Bp_pbft.Replica.low_watermark r >= 72))
    replicas

let test_pbft_duplicate_request_single_execution () =
  (* The same (client, ts) submitted repeatedly — via broadcast storms —
     executes exactly once; later copies get the cached reply. *)
  let engine = Engine.create ~seed:87L () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let cfg = Bp_pbft.Config.make ~nodes:addrs ~keystore () in
  let executions = ref 0 in
  Array.iteri
    (fun i addr ->
      ignore
        (Bp_pbft.Replica.create (Bp_net.Transport.create net addr) cfg ~id:i
           ~execute:(fun ~seq:_ _ ->
             if i = 0 then incr executions;
             "ok")
           ()))
    addrs;
  let ct = Bp_net.Transport.create net (Addr.make ~dc:0 ~idx:100) in
  let client = Bp_pbft.Client.create ct cfg in
  let results = ref 0 in
  Bp_pbft.Client.submit client "only-once" ~on_result:(fun _ -> incr results);
  Engine.run ~until:(Time.of_sec 1.0) engine;
  (* Replay the identical request envelope straight at every replica. *)
  let r = Bp_pbft.Msg.make_request cfg ~client:(Addr.make ~dc:0 ~idx:100) ~ts:1 ~kind:0 ~op:"only-once" in
  let sealed = Bp_pbft.Msg.seal cfg ~sender:(Addr.make ~dc:0 ~idx:100) (Bp_pbft.Msg.Request r) in
  Array.iter
    (fun addr -> Bp_net.Transport.send ct ~dst:addr ~tag:"pbft" sealed)
    addrs;
  Engine.run ~until:(Time.of_sec 3.0) engine;
  Alcotest.(check int) "executed exactly once at the primary" 1 !executions;
  Alcotest.(check int) "client resolved once" 1 !results

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "adversarial",
      [
        tc "altered payload rejected" test_altered_payload_rejected;
        tc "garbage traffic resilience" test_garbage_resilience_real;
        tc "hash-based signatures end-to-end" test_hash_based_scheme_end_to_end;
        tc "independent daemons per destination" test_parallel_sends_to_different_destinations;
        tc "pbft watermark progression" test_pbft_watermark_progression;
        tc "pbft duplicate request executes once" test_pbft_duplicate_request_single_execution;
      ] );
  ]
