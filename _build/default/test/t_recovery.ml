open Bp_sim
open Blockplane

let make_world ?(fi = 1) ?(fg = 0) ?faults ?(seed = 71L)
    ?(app = fun () -> App.make (module App.Null)) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let dep = Deployment.create ~network:net ~n_participants:4 ~fi ~fg ~app () in
  (engine, net, dep)

(* ---------- WAL persistence and crash recovery (§III-C) ---------- *)

let test_wal_replay_rebuilds_state () =
  let engine, _net, dep = make_world () in
  let api = Deployment.api dep 0 in
  for i = 1 to 10 do
    Api.log_commit api (Printf.sprintf "event-%d" i) ~on_done:ignore
  done;
  Engine.run ~until:(Time.of_sec 3.0) engine;
  let node = Deployment.node dep 0 1 in
  let image = Unit_node.wal_image node in
  let fresh = App.make (module App.Null) in
  let count, tail = Unit_node.replay ~image ~app:fresh in
  Alcotest.(check int) "all records recovered" 10 count;
  Alcotest.(check bool) "clean tail" true (tail = Ok ());
  Alcotest.(check string) "recovered state = live state"
    (Bp_util.Hex.encode (Unit_node.app_digest node))
    (Bp_util.Hex.encode (App.digest fresh))

let test_wal_replay_torn_tail () =
  let engine, _net, dep = make_world () in
  let api = Deployment.api dep 0 in
  for i = 1 to 6 do
    Api.log_commit api (Printf.sprintf "event-%d" i) ~on_done:ignore
  done;
  Engine.run ~until:(Time.of_sec 3.0) engine;
  let node = Deployment.node dep 0 0 in
  let image = Unit_node.wal_image node in
  (* A crash mid-write: lose the last few bytes. *)
  let torn = String.sub image 0 (String.length image - 3) in
  let fresh = App.make (module App.Null) in
  let count, tail = Unit_node.replay ~image:torn ~app:fresh in
  Alcotest.(check int) "durable prefix only" 5 count;
  Alcotest.(check bool) "tail reported corrupt" true (tail = Error `Corrupt_tail);
  (* The recovered state matches an independent replay of the prefix. *)
  let reference = App.make (module App.Null) in
  let wal, _ = Bp_storage.Wal.of_contents torn in
  List.iter
    (fun encoded ->
      match Record.decode encoded with
      | Ok r -> App.apply reference r
      | Error _ -> ())
    (Bp_storage.Wal.records wal);
  Alcotest.(check string) "prefix state" (App.digest reference) (App.digest fresh)

let test_wal_covers_receives () =
  (* Received messages are part of durable state: a recovered counter
     replica remembers its increments. *)
  let counter_app () = App.make (module Bp_apps.Counter.Protocol) in
  let engine, _net, dep = make_world ~app:counter_app () in
  let a = Bp_apps.Counter.attach (Deployment.api dep 0) in
  let _b = Bp_apps.Counter.attach (Deployment.api dep 1) in
  Bp_apps.Counter.user_request a ~dest:1 ~on_done:ignore;
  Bp_apps.Counter.user_request a ~dest:1 ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 5.0) engine;
  let node = Deployment.node dep 1 2 in
  Alcotest.(check int) "live counter" 2 (Bp_apps.Counter.value node);
  let fresh = App.make (module Bp_apps.Counter.Protocol) in
  let count, _ = Unit_node.replay ~image:(Unit_node.wal_image node) ~app:fresh in
  Alcotest.(check bool) "records present" true (count >= 4);
  Alcotest.(check string) "recovered counter state"
    (App.describe (Unit_node.app node))
    (App.describe fresh)

let test_crashed_replica_catches_up () =
  (* A node that misses traffic while crashed is brought back up to date
     by the transport's retransmissions once it recovers. *)
  let engine, net, dep = make_world () in
  let api = Deployment.api dep 0 in
  let straggler = Addr.make ~dc:0 ~idx:3 in
  Network.crash net straggler;
  let committed = ref 0 in
  for i = 1 to 5 do
    Api.log_commit api (Printf.sprintf "while-down-%d" i) ~on_done:(fun () ->
        incr committed)
  done;
  Engine.run ~until:(Time.of_sec 3.0) engine;
  Alcotest.(check int) "progress with one node down" 5 !committed;
  Alcotest.(check int) "straggler log empty" 0
    (Bp_storage.Log_store.length (Unit_node.log (Deployment.node dep 0 3)));
  Network.recover net straggler;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check int) "straggler caught up" 5
    (Bp_storage.Log_store.length (Unit_node.log (Deployment.node dep 0 3)));
  Alcotest.(check bool) "unit agreement restored" true (Deployment.logs_agree dep 0)

let test_state_transfer_after_amnesia () =
  (* A replica reboots with empty state (its process died; messages sent
     meanwhile were consumed by the dead process's transport and are gone).
     The state-transfer protocol — triggered by peers' checkpoints — must
     rebuild it from f+1 vouched batches. *)
  let engine = Engine.create ~seed:78L () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let cfg =
    Bp_pbft.Config.make ~nodes:addrs ~keystore ~checkpoint_interval:8 ~batch_max:4 ()
  in
  let transports = Array.map (fun a -> Bp_net.Transport.create net a) addrs in
  let mk i =
    Bp_pbft.Replica.create transports.(i) cfg ~id:i
      ~execute:(fun ~seq:_ r -> "ok:" ^ r.Bp_pbft.Msg.op)
      ()
  in
  let replicas = Array.init 4 mk in
  let client =
    Bp_pbft.Client.create (Bp_net.Transport.create net (Addr.make ~dc:0 ~idx:100)) cfg
  in
  (* Node 3's process dies: handler detached, state lost. *)
  Bp_pbft.Replica.stop replicas.(3);
  let served = ref 0 in
  let submit_range lo hi =
    let rec go i =
      if i <= hi then
        Bp_pbft.Client.submit client (Printf.sprintf "op%d" i) ~on_result:(fun _ ->
            incr served;
            go (i + 1))
    in
    go lo
  in
  submit_range 1 40;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check int) "progress while node 3 dead" 40 !served;
  (* Reboot node 3 with a fresh, empty replica. *)
  let rebooted = mk 3 in
  (* Fresh traffic produces new checkpoints, which trigger the fetch. *)
  submit_range 41 60;
  Engine.run ~until:(Time.of_sec 30.0) engine;
  Alcotest.(check int) "all served" 60 !served;
  Alcotest.(check bool)
    (Printf.sprintf "rebooted replica caught up (last_exec=%d)"
       (Bp_pbft.Replica.last_executed rebooted))
    true
    (Bp_pbft.Replica.last_executed rebooted
    >= Bp_pbft.Replica.last_executed replicas.(0) - 4);
  Alcotest.(check string) "execution chain agrees at a common prefix"
    (Bp_util.Hex.encode (Bp_pbft.Replica.exec_chain replicas.(0)))
    (Bp_util.Hex.encode (Bp_pbft.Replica.exec_chain replicas.(1)))

(* ---------- further byzantine scenarios ---------- *)

let test_lying_reply_masked_by_quorum () =
  (* One byzantine replica answers clients with garbage results; the
     client's f+1 matching-replies rule masks it. *)
  let engine = Engine.create ~seed:72L () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:2 ~idx:i) in
  let cfg = Bp_pbft.Config.make ~nodes:addrs ~keystore () in
  Array.iteri
    (fun i addr ->
      let transport = Bp_net.Transport.create net addr in
      let execute ~seq:_ (r : Bp_pbft.Msg.request) =
        if i = 2 then "LIES" else "ok:" ^ r.Bp_pbft.Msg.op
      in
      ignore (Bp_pbft.Replica.create transport cfg ~id:i ~execute ()))
    addrs;
  let client =
    Bp_pbft.Client.create (Bp_net.Transport.create net (Addr.make ~dc:2 ~idx:100)) cfg
  in
  let result = ref "" in
  Bp_pbft.Client.submit client "probe" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 3.0) engine;
  Alcotest.(check string) "honest majority answer wins" "ok:probe" !result

let test_reserve_not_fooled_by_inflated_claim () =
  (* A byzantine destination node claims it has received far more than it
     has, trying to hide a malicious daemon's suppression. The reserve's
     (f+1)-th-largest rule ignores the inflated claim. *)
  let engine, net, dep = make_world ~seed:73L () in
  ignore net;
  let api0 = Deployment.api dep 0 in
  (* Kill the real daemon so only the reserve can deliver. *)
  Comm_daemon.set_enabled (Deployment.daemon dep ~src:0 ~dest:2) false;
  (* A byzantine node at the destination floods the source's reserves
     with inflated progress reports. *)
  let byz = Deployment.node dep 2 3 in
  let liar_timer =
    Engine.periodic engine ~every:(Time.of_ms 100.0) (fun () ->
        List.iter
          (fun reserve_host ->
            Bp_net.Transport.send (Unit_node.transport byz)
              ~dst:(Unit_node.addr reserve_host) ~tag:(Proto.aux_tag 0)
              (Proto.encode (Proto.Reserve_reply { src = 0; last = 1_000_000 })))
          [ Deployment.node dep 0 1; Deployment.node dep 0 2 ])
  in
  let got = ref [] in
  Api.on_receive (Deployment.api dep 2) (fun ~src:_ p -> got := p :: !got);
  Api.send api0 ~dest:2 "must-arrive" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 20.0) engine;
  Engine.cancel liar_timer;
  Alcotest.(check (list string)) "reserve still promoted and delivered"
    [ "must-arrive" ] !got;
  Alcotest.(check bool) "promotion happened despite the liar" true
    (List.exists Reserve.promoted (Deployment.reserves dep ~src:0 ~dest:2))

let test_replayed_transmission_is_dropped () =
  (* Lemma 2's no-duplicates clause: replaying a legitimate, fully signed
     transmission record does not deliver it twice. *)
  let engine, _net, dep = make_world ~seed:74L () in
  let api0 = Deployment.api dep 0 in
  let api1 = Deployment.api dep 1 in
  let got = ref 0 in
  Api.on_receive api1 (fun ~src:_ _ -> incr got);
  Api.send api0 ~dest:1 "once" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 2.0) engine;
  Alcotest.(check int) "delivered" 1 !got;
  (* Capture the genuine signed record from the destination's log and
     replay it at another destination node. *)
  let log1 = Unit_node.log (Deployment.node dep 1 0) in
  let captured = ref None in
  Bp_storage.Log_store.iter_from log1 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Recv tr) -> captured := Some tr
      | _ -> ());
  (match !captured with
  | None -> Alcotest.fail "no transmission in log"
  | Some tr ->
      let attacker = Deployment.node dep 1 3 in
      Bp_net.Transport.send (Unit_node.transport attacker)
        ~dst:(Deployment.unit_addrs dep 1).(2)
        ~tag:(Proto.aux_tag 1)
        (Proto.encode (Proto.Transmit { transmission = tr })));
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Alcotest.(check int) "still exactly once" 1 !got;
  Alcotest.(check bool) "destination unit consistent" true (Deployment.logs_agree dep 1)

let test_wrong_destination_transmission_rejected () =
  (* A transmission addressed to participant 2 delivered to participant 1
     must be refused outright. *)
  let engine, _net, dep = make_world ~seed:75L () in
  let api0 = Deployment.api dep 0 in
  Api.send api0 ~dest:2 "for-two" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 2.0) engine;
  let log2 = Unit_node.log (Deployment.node dep 2 0) in
  let captured = ref None in
  Bp_storage.Log_store.iter_from log2 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Recv tr) -> captured := Some tr
      | _ -> ());
  (match !captured with
  | None -> Alcotest.fail "no transmission captured"
  | Some tr ->
      let attacker = Deployment.node dep 2 3 in
      Bp_net.Transport.send (Unit_node.transport attacker)
        ~dst:(Deployment.unit_addrs dep 1).(0)
        ~tag:(Proto.aux_tag 1)
        (Proto.encode (Proto.Transmit { transmission = tr })));
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Alcotest.(check int) "participant 1 received nothing" (-1)
    (Unit_node.last_received (Deployment.node dep 1 0) ~src:0)

let test_fi2_tolerates_two_byzantine () =
  (* A unit sized for fi=2 (7 nodes) masks two byzantine members. *)
  let engine, _net, dep = make_world ~fi:2 ~seed:76L () in
  Bp_pbft.Replica.suppress_commit_votes
    (Unit_node.replica (Deployment.node dep 0 5))
    true;
  Unit_node.set_byzantine_sign_anything (Deployment.node dep 0 6) true;
  let api0 = Deployment.api dep 0 in
  let api1 = Deployment.api dep 1 in
  let got = ref [] in
  Api.on_receive api1 (fun ~src:_ p -> got := p :: !got);
  let committed = ref 0 in
  for i = 1 to 3 do
    Api.log_commit api0 (Printf.sprintf "c%d" i) ~on_done:(fun () -> incr committed);
    Api.send api0 ~dest:1 (Printf.sprintf "m%d" i) ~on_done:ignore
  done;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Alcotest.(check int) "commits" 3 !committed;
  Alcotest.(check (list string)) "messages" [ "m1"; "m2"; "m3" ] (List.rev !got);
  Alcotest.(check bool) "agreement" true (Deployment.logs_agree dep 0)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "recovery.wal",
      [
        tc "replay rebuilds state" test_wal_replay_rebuilds_state;
        tc "torn tail recovers prefix" test_wal_replay_torn_tail;
        tc "receives are durable" test_wal_covers_receives;
        tc "crashed replica catches up" test_crashed_replica_catches_up;
        tc "state transfer after amnesiac reboot" test_state_transfer_after_amnesia;
      ] );
    ( "byzantine.more",
      [
        tc "lying reply masked by quorum" test_lying_reply_masked_by_quorum;
        tc "reserve ignores inflated claims" test_reserve_not_fooled_by_inflated_claim;
        tc "replayed transmission dropped" test_replayed_transmission_is_dropped;
        tc "wrong-destination transmission rejected" test_wrong_destination_transmission_rejected;
        tc "fi=2 masks two byzantine nodes" test_fi2_tolerates_two_byzantine;
      ] );
  ]
