examples/bank_transfer.ml: Api App Bank Blockplane Bp_apps Bp_sim Deployment Engine Network Printf Record Time Topology
