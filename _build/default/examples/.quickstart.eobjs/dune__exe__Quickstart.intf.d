examples/quickstart.mli:
