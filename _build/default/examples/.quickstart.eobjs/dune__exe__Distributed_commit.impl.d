examples/distributed_commit.ml: Api App Blockplane Bp_apps Bp_codec Bp_sim Bp_storage Deployment Engine List Network Option Printf Record Time Topology Two_phase
