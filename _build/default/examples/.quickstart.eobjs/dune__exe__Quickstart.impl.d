examples/quickstart.ml: Addr Api App Array Blockplane Bp_apps Bp_sim Deployment Engine Network Printf Record Time Topology Unit_node
