examples/byzantized_paxos.ml: App Array Blockplane Bp_apps Bp_sim Byz_paxos Deployment Engine List Network Printf String Time Topology
