examples/byzantized_paxos.mli:
