examples/failover_demo.ml: Api App Blockplane Bp_sim Deployment Engine Geo List Network Printf String Time Topology
