(* A globally-distributed bank on Blockplane — the mission-critical
   workload class the paper targets (§VI-D).

   Ledgers live at California and Ireland. A cross-datacenter transfer
   debits the source ledger, ships a credit message through Blockplane's
   communication interface, and credits the destination only when the
   verified message arrives. Along the way we let a byzantine replica try
   to mint money and watch the verification routines stop it.

   Run with:  dune exec examples/bank_transfer.exe *)

open Bp_sim
open Blockplane
open Bp_apps

let () =
  let engine = Engine.create ~seed:7777L () in
  let network = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module Bank.Ledger))
      ()
  in
  let c = Topology.dc_california and i = Topology.dc_ireland in
  let bank_c = Bank.attach (Deployment.api dep c) in
  let _bank_i = Bank.attach (Deployment.api dep i) in

  let log fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "[%7.1f ms] %s\n" (Time.to_ms (Engine.now engine)) s)
      fmt
  in

  (* Open an account and move money across the Atlantic. *)
  Bank.open_account bank_c "alice" 500 ~on_done:(fun () ->
      log "opened alice@California with balance 500";
      Bank.transfer bank_c ~from_account:"alice" ~dest:i ~to_account:"bob" 200
        ~on_done:(fun () -> log "debit committed at California; credit in flight"));
  Engine.run ~until:(Time.of_sec 2.0) engine;

  let show () =
    Printf.printf "  alice@California = %s\n"
      (match Bank.balance (Deployment.node dep c 0) "alice" with
      | Some b -> string_of_int b
      | None -> "-");
    Printf.printf "  bob@Ireland      = %s\n"
      (match Bank.balance (Deployment.node dep i 0) "bob" with
      | Some b -> string_of_int b
      | None -> "-")
  in
  Printf.printf "\nledgers after the transfer:\n";
  show ();

  (* Attack 1: overdraft. *)
  let overdraft_rejected = ref false in
  Bank.withdraw bank_c "alice" 10_000
    ~on_rejected:(fun () -> overdraft_rejected := true)
    ~on_done:(fun () -> assert false);
  (* Attack 2: a byzantine replica proposes a credit with no transfer
     behind it. *)
  let mint_rejected = ref false in
  Api.submit_record (Deployment.api dep i)
    (Record.Commit (Bank.encode_op (Bank.Credit_from_transfer ("bob", 1_000_000))))
    ~on_done:(fun () -> assert false)
    ~on_rejected:(fun () -> mint_rejected := true);
  Engine.run ~until:(Time.of_sec 4.0) engine;

  Printf.printf "\nattacks:\n";
  Printf.printf "  overdraft rejected:     %b\n" !overdraft_rejected;
  Printf.printf "  minted credit rejected: %b\n" !mint_rejected;
  Printf.printf "\nfinal ledgers (unchanged by the attacks):\n";
  show ();
  Printf.printf "units consistent: %b %b\n"
    (Deployment.app_digests_agree dep c)
    (Deployment.app_digests_agree dep i)
