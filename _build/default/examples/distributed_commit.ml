(* Byzantized two-phase commit — atomic transactions across datacenters
   (the §III-C transaction-processing use case).

   A coordinator in California runs 2PC over partitions held in Oregon,
   Virginia and Ireland. The benign protocol is unchanged; Blockplane's
   verification routines make every step unfakeable: a cohort cannot vote
   YES for an inapplicable operation, and the coordinator cannot decide
   COMMIT unless every YES vote was genuinely received.

   Run with:  dune exec examples/distributed_commit.exe *)

open Bp_sim
open Blockplane
open Bp_apps

let () =
  let engine = Engine.create ~seed:271828L () in
  let network = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module Two_phase.Protocol))
      ()
  in
  let coord = Two_phase.attach_coordinator (Deployment.api dep 0) in
  List.iter (fun p -> Two_phase.attach_cohort (Deployment.api dep p)) [ 1; 2; 3 ];

  let log fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "[%7.1f ms] %s\n" (Time.to_ms (Engine.now engine)) s)
      fmt
  in
  let name p = Topology.name Topology.aws_paper p in

  (* Transaction 1: provision a user across three partitions. *)
  Two_phase.submit coord
    ~ops:
      [
        (1, Bp_storage.Kv.Put ("user:42:profile", "alice"));
        (2, Bp_storage.Kv.Put ("user:42:balance", "100"));
        (3, Bp_storage.Kv.Put ("user:42:settings", "default"));
      ]
    ~on_decided:(fun o ->
      log "txn-1 (provision across O, V, I): %s"
        (match o with Two_phase.Committed -> "COMMITTED" | Aborted -> "ABORTED"));
  Engine.run ~until:(Time.of_sec 2.0) engine;

  (* Transaction 2: one leg cannot apply -> global abort, nothing sticks. *)
  Two_phase.submit coord
    ~ops:
      [
        (1, Bp_storage.Kv.Put ("user:43:profile", "bob"));
        (2, Bp_storage.Kv.Delete "user:43:balance" (* does not exist *));
      ]
    ~on_decided:(fun o ->
      log "txn-2 (one impossible leg):        %s"
        (match o with Two_phase.Committed -> "COMMITTED" | Aborted -> "ABORTED"));
  Engine.run ~until:(Time.of_sec 4.0) engine;

  Printf.printf "\npartitions after both transactions:\n";
  List.iter
    (fun (p, key) ->
      Printf.printf "  %-10s %-18s = %s\n" (name p) key
        (Option.value ~default:"(absent)"
           (Two_phase.partition_get (Deployment.node dep p 0) key)))
    [
      (1, "user:42:profile");
      (2, "user:42:balance");
      (3, "user:42:settings");
      (1, "user:43:profile");
    ];

  (* A byzantine replica tries to force-commit a refused transaction. *)
  let rejected = ref false in
  Api.submit_record (Deployment.api dep 0)
    (Record.Commit
       (Bp_codec.Wire.encode (fun e ->
            Bp_codec.Wire.u8 e 1;
            Bp_codec.Wire.string e "t0.1";
            Bp_codec.Wire.bool e true)))
    ~on_done:(fun () -> assert false)
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Printf.printf "\nbyzantine force-COMMIT of the aborted txn rejected: %b\n" !rejected;
  let committed, aborted = Two_phase.decided_count coord in
  Printf.printf "coordinator tally: %d committed, %d aborted\n" committed aborted
