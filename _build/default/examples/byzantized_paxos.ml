(* Byzantizing a benign consensus protocol (§VI-E / §VIII-D).

   Plain Paxos tolerates crashes but not lies. Rewritten against the
   Blockplane API — every state change log-committed, every message
   through send/receive — it tolerates byzantine nodes *inside* each
   datacenter while keeping Paxos's one-round wide-area latency.

   This demo elects a leader at Virginia, replicates a few commands, and
   prints the wide-area latency of each Replication phase; compare them
   with Table I's 70 ms RTT from Virginia to its closest majority.

   Run with:  dune exec examples/byzantized_paxos.exe *)

open Bp_sim
open Blockplane
open Bp_apps

let () =
  let engine = Engine.create ~seed:99L () in
  let network = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module Byz_paxos.Protocol))
      ()
  in
  let drivers =
    Array.init 4 (fun p -> Byz_paxos.attach (Deployment.api dep p) ~n_participants:4)
  in
  let v = Topology.dc_virginia in

  Printf.printf "electing a leader at Virginia...\n";
  let elected_at = ref Time.zero in
  Byz_paxos.elect drivers.(v) ~on_elected:(fun ok ->
      elected_at := Engine.now engine;
      Printf.printf "[%7.1f ms] election %s\n"
        (Time.to_ms (Engine.now engine))
        (if ok then "won" else "lost"));
  Engine.run ~until:(Time.of_sec 2.0) engine;

  Printf.printf "\nreplicating three commands (paper: ~70-78 ms each from Virginia):\n";
  let rec replicate_seq i =
    if i <= 3 then begin
      let started = Engine.now engine in
      Byz_paxos.replicate drivers.(v)
        (Printf.sprintf "command-%d" i)
        ~on_result:(fun ok ->
          Printf.printf "[%7.1f ms] command-%d %s in %.1f ms\n"
            (Time.to_ms (Engine.now engine))
            i
            (if ok then "committed" else "failed")
            (Time.to_ms (Time.diff (Engine.now engine) started));
          replicate_seq (i + 1))
    end
  in
  replicate_seq 1;
  Engine.run ~until:(Time.of_sec 4.0) engine;

  Printf.printf "\ndecided at the leader: %s\n"
    (String.concat ", "
       (List.rev_map (fun (i, value) -> Printf.sprintf "#%d=%s" i value)
          (Byz_paxos.decided drivers.(v))));
  Printf.printf "every unit's protocol replicas agree: %b\n"
    (List.for_all
       (fun p -> Deployment.app_digests_agree dep p)
       [ 0; 1; 2; 3 ])
