(* Quickstart: byzantize the paper's distributed counter (Algorithm 1).

   Four participants — one per simulated AWS datacenter — each backed by
   a Blockplane unit of 4 nodes (fi = 1). A user triggers requests at
   California addressed to Virginia; Virginia's counter increments once
   per *genuinely received* message, on every replica of its unit, even
   though any single node could be byzantine.

   Run with:  dune exec examples/quickstart.exe *)

open Bp_sim
open Blockplane

let () =
  (* 1. A deterministic world: engine + the paper's four-DC topology. *)
  let engine = Engine.create ~seed:2024L () in
  let network = Network.create engine Topology.aws_paper () in

  (* 2. Deploy Blockplane: 4 participants, fi=1 (4 nodes each), running
        the counter protocol with its verification routines. *)
  let dep =
    Deployment.create ~network ~n_participants:4 ~fi:1
      ~app:(fun () -> App.make (module Bp_apps.Counter.Protocol))
      ()
  in

  let california = Topology.dc_california and virginia = Topology.dc_virginia in
  let sender = Bp_apps.Counter.attach (Deployment.api dep california) in
  let _receiver = Bp_apps.Counter.attach (Deployment.api dep virginia) in

  (* 3. Three user requests: log-commit + send, per Algorithm 1. *)
  for _ = 1 to 3 do
    Bp_apps.Counter.user_request sender ~dest:virginia ~on_done:(fun () ->
        Printf.printf "[%6.1f ms] request committed and sent at California\n"
          (Time.to_ms (Engine.now engine)))
  done;

  (* 4. Let the simulated world run for a second of virtual time. *)
  Engine.run ~until:(Time.of_sec 1.0) engine;

  (* 5. Every replica of Virginia's unit agrees on the counter. *)
  Printf.printf "\nVirginia's unit after the run:\n";
  Array.iter
    (fun node ->
      Printf.printf "  node %s: counter = %d\n"
        (Addr.to_string (Unit_node.addr node))
        (Bp_apps.Counter.value node))
    (Deployment.nodes_of dep virginia);
  Printf.printf "replicas agree: %b\n" (Deployment.app_digests_agree dep virginia);

  (* 6. The byzantine attack from the paper: committing an increment with
        no received message behind it is rejected by the verification
        routines. *)
  let rejected = ref false in
  Api.submit_record (Deployment.api dep virginia) (Record.Commit "increment-counter")
    ~on_done:ignore
    ~on_rejected:(fun () -> rejected := true);
  Engine.run ~until:(Time.of_sec 2.0) engine;
  Printf.printf "\nforged increment rejected by verification routines: %b\n" !rejected;
  Printf.printf "counter still %d\n"
    (Bp_apps.Counter.value (Deployment.node dep virginia 0))
