(* Geo-correlated failures (§V / Fig. 8): surviving a whole-datacenter
   outage.

   With fg = 1, each commit at California must additionally be mirrored
   and attested by one other participant before it counts. The closest
   mirror is Oregon (19 ms RTT). Mid-run we take Oregon's datacenter down
   — a benign geo-correlated failure — and watch commits reroute to
   Virginia, at higher latency but without losing anything.

   Run with:  dune exec examples/failover_demo.exe *)

open Bp_sim
open Blockplane

let () =
  let engine = Engine.create ~seed:31415L () in
  let network = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network ~n_participants:4 ~fi:1 ~fg:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let c = Topology.dc_california in
  let api = Deployment.api dep c in
  let geo = Deployment.geo dep c in
  Geo.on_suspect geo (fun p ->
      Printf.printf "[%7.1f ms] !! mirror participant %s suspected\n"
        (Time.to_ms (Engine.now engine))
        (Topology.name Topology.aws_paper p));

  let commit i ~k =
    let started = Engine.now engine in
    Api.log_commit api (Printf.sprintf "entry-%d" i) ~on_done:(fun () ->
        Printf.printf
          "[%7.1f ms] entry-%d committed+proved in %.1f ms (targets: %s)\n"
          (Time.to_ms (Engine.now engine))
          i
          (Time.to_ms (Time.diff (Engine.now engine) started))
          (String.concat ","
             (List.map (Topology.name Topology.aws_paper) (Geo.current_targets geo)));
        k ())
  in
  let rec phase1 i =
    if i <= 3 then commit i ~k:(fun () -> phase1 (i + 1))
    else begin
      Printf.printf "\n>>> killing the Oregon datacenter <<<\n\n";
      Network.crash_dc network Topology.dc_oregon;
      phase2 4
    end
  and phase2 i = if i <= 7 then commit i ~k:(fun () -> phase2 (i + 1)) in
  phase1 1;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  Printf.printf "\nall 7 entries proved: %b\n"
    (List.for_all (fun pos -> Geo.is_proved geo ~pos) [ 0; 1; 2; 3; 4; 5; 6 ])
