(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§VIII) on the deterministic simulator, printing measured-vs-paper
   rows — one block per table/figure, in paper order.

   Part 2 runs Bechamel micro-benchmarks of the compute-bound substrate
   (hashing, signatures, codecs, the event engine), i.e. the real CPU
   cost of running the harness itself.

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig7         # one experiment
     dune exec bench/main.exe -- micro        # only the micro-benchmarks
     BP_BENCH_SCALE=0.2 dune exec bench/main.exe   # quicker sweep *)

open Bechamel
open Toolkit

(* ---------- part 1: the paper's tables and figures ---------- *)

let scale =
  match Sys.getenv_opt "BP_BENCH_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let run_experiment e =
  Printf.printf "\n";
  let t0 = Unix.gettimeofday () in
  List.iter Bp_harness.Report.print (e.Bp_harness.Experiments.run ~scale);
  Printf.printf "   (regenerated in %.1fs wall time)\n%!" (Unix.gettimeofday () -. t0)

let run_paper_benches ids =
  Printf.printf "=====================================================\n";
  Printf.printf "Blockplane (ICDE 2019) - evaluation reproduction\n";
  Printf.printf "scale=%.2f (set BP_BENCH_SCALE to adjust)\n" scale;
  Printf.printf "=====================================================\n";
  List.iter
    (fun e ->
      if ids = [] || List.mem e.Bp_harness.Experiments.id ids then run_experiment e)
    Bp_harness.Experiments.all

(* ---------- part 2: micro-benchmarks ---------- *)

let micro_tests () =
  let open Bp_crypto in
  let rng = Bp_util.Rng.create 7L in
  let payload_1k = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
  let payload_64k = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let lamport_sk, lamport_pk = Lamport.keygen rng in
  let lamport_sig = Lamport.sign lamport_sk "msg" in
  let record =
    Blockplane.Record.Recv
      {
        Blockplane.Record.src = 1;
        tdest = 0;
        tcomm_seq = 42;
        log_pos = 117;
        tpayload = payload_1k;
        proofs = [ ("u1/n1.0", String.make 32 's'); ("u1/n1.1", String.make 32 't') ];
        geo_proofs = [];
      }
  in
  let encoded_record = Blockplane.Record.encode record in
  let frame = Bp_codec.Frame.seal payload_1k in
  [
    Test.make ~name:"sha256 (1 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_1k));
    Test.make ~name:"sha256 (64 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_64k));
    Test.make ~name:"hmac-sha256 (1 KiB)"
      (Staged.stage (fun () -> Hmac.sha256 ~key:"benchkey" payload_1k));
    Test.make ~name:"crc32 (64 KiB)"
      (Staged.stage (fun () -> Crc32.string payload_64k));
    Test.make ~name:"merkle root (64 leaves)"
      (Staged.stage
         (let leaves = List.init 64 string_of_int in
          fun () -> Merkle.root leaves));
    Test.make ~name:"lamport verify"
      (Staged.stage (fun () -> Lamport.verify lamport_pk "msg" lamport_sig));
    Test.make ~name:"record decode (1 KiB recv)"
      (Staged.stage (fun () -> Blockplane.Record.decode encoded_record));
    Test.make ~name:"frame unseal (1 KiB)"
      (Staged.stage (fun () -> Bp_codec.Frame.unseal frame));
    Test.make ~name:"engine schedule+fire 1k events"
      (Staged.stage (fun () ->
           let e = Bp_sim.Engine.create () in
           for i = 1 to 1000 do
             ignore
               (Bp_sim.Engine.schedule e ~after:(Bp_sim.Time.of_us i) (fun () -> ()))
           done;
           Bp_sim.Engine.run e));
    Test.make ~name:"simulated local commit (full unit)"
      (Staged.stage (fun () ->
           let world = Bp_harness.Runner.fresh_world ~n_participants:1 () in
           let api = Blockplane.Deployment.api world.Bp_harness.Runner.dep 0 in
           let ok = ref false in
           Blockplane.Api.log_commit api "bench" ~on_done:(fun () -> ok := true);
           Bp_sim.Engine.run ~until:(Bp_sim.Time.of_sec 1.0)
             world.Bp_harness.Runner.engine;
           assert !ok));
  ]

let run_micro () =
  Printf.printf "\n=====================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel; real CPU time per call)\n";
  Printf.printf "=====================================================\n";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) when ns < 1e4 ->
              Printf.printf "%-42s %10.0f ns/op\n" name ns
          | Some (ns :: _) -> Printf.printf "%-42s %10.1f us/op\n" name (ns /. 1e3)
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        analyzed)
    (micro_tests ());
  Printf.printf "%!"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "micro" ] -> run_micro ()
  | [] ->
      run_paper_benches [];
      run_micro ()
  | ids -> run_paper_benches ids
